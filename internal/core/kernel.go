package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dtu"
	"repro/internal/kif"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tile"
)

// Program is the unit of execution the kernel can start on a PE. The
// program table stands in for the executable store: real M3 transfers
// binaries; we transfer the same bytes for timing but dispatch into Go
// functions.
type Program func(c *tile.Ctx)

// ProgTable maps program ids (carried in vpestart system calls) to
// program functions. It is host-side state shared by kernel and libm3.
type ProgTable struct {
	progs map[uint64]Program
	next  uint64
}

// Register stores f and returns its id.
func (t *ProgTable) Register(f Program) uint64 {
	if t.progs == nil {
		t.progs = make(map[uint64]Program)
	}
	t.next++
	t.progs[t.next] = f
	return t.next
}

// Get returns the program with the given id, or nil.
func (t *ProgTable) Get(id uint64) Program { return t.progs[id] }

// Stats counts kernel activity.
type Stats struct {
	//m3vet:resolve sharedstate owner kernel counters are bumped only by kernel dispatcher/helper processes
	Syscalls map[kif.SyscallOp]uint64
	//m3vet:resolve sharedstate owner kernel counters are bumped only by kernel dispatcher/helper processes
	ServiceCalls uint64

	// Fault-tolerance counters, nonzero only under fault injection:
	// syscall replies abandoned after the DTU retry budget (the client
	// died or its reply endpoint is unreachable), endpoint
	// invalidations of a dead PE that timed out, and VPEs reaped by
	// the death watchdog.
	//m3vet:resolve sharedstate owner kernel counters are bumped only by kernel dispatcher/helper processes
	RepliesDropped uint64
	//m3vet:resolve sharedstate owner kernel counters are bumped only by kernel dispatcher/helper processes
	FailedInvalidations uint64
	//m3vet:resolve sharedstate owner kernel counters are bumped only by kernel dispatcher/helper processes
	VPEsReaped uint64

	// Recovery counters: kernel→service calls that hit the armed
	// deadline, and supervised services respawned after a reap.
	//m3vet:resolve sharedstate owner kernel counters are bumped only by kernel dispatcher/helper processes
	ServiceTimeouts uint64
	//m3vet:resolve sharedstate owner kernel counters are bumped only by kernel dispatcher/helper processes
	ServiceRestarts uint64

	// Overload-control counters, nonzero only with EnableOverload:
	// calls rejected by the shed controller, calls failed fast by an
	// open circuit breaker, calls the service DTU refused at its
	// admission watermark, and supervisor respawns delayed because the
	// service's breaker was still open.
	//m3vet:resolve sharedstate owner kernel counters are bumped only by kernel dispatcher/helper processes
	CallsShed uint64
	//m3vet:resolve sharedstate owner kernel counters are bumped only by kernel dispatcher/helper processes
	BreakerRejects uint64
	//m3vet:resolve sharedstate owner kernel counters are bumped only by kernel dispatcher/helper processes
	CallsRefused uint64
	//m3vet:resolve sharedstate owner kernel counters are bumped only by kernel dispatcher/helper processes
	RestartsHeld uint64
}

// SyscallCount is one (opcode, count) pair of the syscall counter map.
type SyscallCount struct {
	Op    kif.SyscallOp
	Count uint64
}

// SortedSyscalls returns the syscall counters in opcode-name order —
// the one sanctioned way to report the map, so no output path walks it
// in randomized map order.
func (s *Stats) SortedSyscalls() []SyscallCount {
	ops := make([]kif.SyscallOp, 0, len(s.Syscalls))
	for op := range s.Syscalls {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].String() < ops[j].String() })
	out := make([]SyscallCount, len(ops))
	for i, op := range ops {
		out[i] = SyscallCount{Op: op, Count: s.Syscalls[op]}
	}
	return out
}

// Metric names the kernel registers (m3vet: metricname).
const (
	// MSyscalls counts handled syscalls: index -1 is the total, index
	// op the per-opcode count.
	MSyscalls = "kernel_syscalls_total"
	// MSyscallRate samples the cumulative syscall count on the
	// sim clock; successive sample deltas are the syscall rate.
	MSyscallRate = "kernel_syscall_rate"
	// MEPReconfigs counts remote endpoint configurations the kernel
	// issued (gate activations, std EP installs, invalidations).
	MEPReconfigs = "kernel_ep_reconfigs_total"
	// MCapRevocations counts dropped capabilities (explicit revokes,
	// VPE teardown, death-watchdog reaps).
	MCapRevocations = "kernel_cap_revocations_total"
	// MSupervisorRestarts counts supervised service respawns.
	MSupervisorRestarts = "kernel_supervisor_restarts_total"
)

// Kernel is the M3 kernel instance, bound to a dedicated kernel PE.
type Kernel struct {
	Plat  *tile.Platform
	PE    *tile.PE
	Progs *ProgTable

	// cpu serializes kernel software: the dispatcher and helper
	// activities share the single kernel core.
	cpu *sim.Resource

	vpes     map[uint64]*VPE
	nextVPE  uint64
	peUsed   []bool
	services map[string]*ServiceObj
	dram     *allocator

	pendingServ map[uint64]*servPending
	nextServOp  uint64
	nextSrvEP   int

	// srvEpochs counts registrations per service name (lookup only,
	// never walked) so every re-registration gets a fresh epoch.
	srvEpochs map[string]uint64

	// supervised maps the VPE id of a supervised service's current
	// incarnation to its restart record (lookup only, never walked).
	supervised map[uint64]*supervised

	// servDeadline bounds kernel→service calls in cycles; zero (the
	// default) keeps them unbounded and schedules no deadline events.
	// Armed by internal/fault (m3vet: faultsite) or EnableOverload.
	servDeadline sim.Time

	// costDelta perturbs the syscall dispatch cost (added to
	// CostDispatch on every handled syscall). It exists for the
	// differential-observability self-test: a seeded kernel-side cost
	// regression that m3diff must attribute to the kernel layer. Zero
	// (the default) charges exactly the cost table and schedules
	// nothing extra, keeping unperturbed runs bit-identical.
	//m3vet:resolve sharedstate owner written once before boot (PerturbSyscallCost), read only by the kernel dispatcher
	costDelta sim.Time

	// overload is the armed overload-control state (shed controllers,
	// circuit breakers); nil means every gate below is a no-op.
	overload *kernelOverload

	inits  []initAction
	booted bool

	// actSig wakes kernel helper activities that wait for a receive
	// gate to be activated or for a VPE to die (deferred send-gate
	// activation, §4.5.4). A kernel-wide signal keeps the wakeup order
	// deterministic and lets VPE teardown unblock every helper that
	// waits on a gate owned by a dead VPE.
	actSig *sim.Signal

	// Cached metric handles (nil-safe, inert without a tracer). The
	// overload pair registers lazily on first increment so runs that
	// never shed keep identical metric snapshots.
	mSyscalls           *obs.Counter
	mEPReconfigs        *obs.Counter
	mCapRevocations     *obs.Counter
	mSupervisorRestarts *obs.Counter
	//m3vet:resolve sharedstate owner registered lazily from kernel helper processes only
	mCallsShed *obs.Counter
	//m3vet:resolve sharedstate owner registered lazily from kernel helper processes only
	mBreakerOpens *obs.Counter

	Stats Stats
}

type servPending struct {
	sig *sim.Signal
	msg *dtu.Message
}

type initAction struct {
	vpe  *VPE
	prog Program
}

// Boot creates the kernel on the given PE, configures its receive
// endpoints, and schedules the boot process that downgrades all
// application PEs (NoC-level isolation) and then serves system calls
// forever. Init VPEs queued with StartInit before the engine runs are
// started by the boot process.
func Boot(plat *tile.Platform, kernelPE int) *Kernel {
	kpe := plat.PEs[kernelPE]
	k := &Kernel{
		Plat:        plat,
		PE:          kpe,
		Progs:       &ProgTable{},
		cpu:         sim.NewResource(plat.Eng, 1),
		vpes:        make(map[uint64]*VPE),
		peUsed:      make([]bool, len(plat.PEs)),
		services:    make(map[string]*ServiceObj),
		dram:        newAllocator(0, plat.DRAM.Size()),
		pendingServ: make(map[uint64]*servPending),
		nextSrvEP:   kif.KFirstSrvEP,
		srvEpochs:   make(map[string]uint64),
		supervised:  make(map[uint64]*supervised),
		actSig:      sim.NewSignal(plat.Eng),
	}
	k.peUsed[kernelPE] = true
	mustConfig(kpe.DTU.Configure(kif.KSyscallEP, dtu.Endpoint{
		Type: dtu.EpReceive, BufAddr: kif.KSyscallBufAddr,
		SlotSize: kif.KSyscallSlotSize, SlotCount: kif.KSyscallSlots,
	}))
	mustConfig(kpe.DTU.Configure(kif.KServReplyEP, dtu.Endpoint{
		Type: dtu.EpReceive, BufAddr: kif.KServReplyBufAddr,
		SlotSize: kif.KServReplySlotSize, SlotCount: kif.KServReplySlots,
	}))
	k.Stats.Syscalls = make(map[kif.SyscallOp]uint64)
	if tr := plat.Obs; tr.On() {
		m := tr.Metrics()
		k.mSyscalls = m.Counter(MSyscalls, -1)
		k.mEPReconfigs = m.Counter(MEPReconfigs, -1)
		k.mCapRevocations = m.Counter(MCapRevocations, -1)
		k.mSupervisorRestarts = m.Counter(MSupervisorRestarts, -1)
		ctr := k.mSyscalls
		m.Series(MSyscallRate, -1, func() int64 { return int64(ctr.Value()) })
	}
	kpe.Start("kernel", k.run)
	return k
}

// PerturbSyscallCost adds delta cycles to every syscall dispatch — a
// seeded kernel-side regression for the m3diff self-test (`make
// diff-smoke`). Call before the engine runs; a zero delta leaves the
// run bit-identical to an unperturbed one.
func (k *Kernel) PerturbSyscallCost(delta sim.Time) { k.costDelta = delta }

func mustConfig(err error) {
	if err != nil {
		panic(fmt.Sprintf("core: kernel endpoint config failed: %v", err))
	}
}

// configRemote is the kernel's single choke point for remote endpoint
// configuration: every activation, std-EP install, and invalidation
// goes through it so the reconfiguration count is complete.
func (k *Kernel) configRemote(p *sim.Process, node noc.NodeID, ep int, cfg dtu.Endpoint) error {
	if tr := k.Plat.Obs; tr.On() {
		k.mEPReconfigs.Inc()
	}
	return k.PE.DTU.ConfigureRemote(p, node, ep, cfg)
}

// StartInit queues a VPE that the kernel starts during boot, before
// serving system calls: the way services (m3fs) and the first
// application enter the system. It must be called before the engine
// runs. It returns the created VPE.
func (k *Kernel) StartInit(name string, peType tile.CoreType, prog Program) (*VPE, error) {
	if k.booted {
		return nil, errors.New("core: StartInit after boot")
	}
	pe := k.allocPE(peType)
	if pe == nil {
		return nil, errors.New("core: no free PE for init VPE")
	}
	vpe := k.newVPE(name, pe)
	k.inits = append(k.inits, initAction{vpe: vpe, prog: prog})
	return vpe, nil
}

// VPEByID returns a VPE by id (for tests and the harness).
func (k *Kernel) VPEByID(id uint64) *VPE { return k.vpes[id] }

// VPEs returns all VPEs in id order (for the death watchdog and the
// chaos harness; the order is part of the deterministic schedule).
func (k *Kernel) VPEs() []*VPE {
	ids := make([]uint64, 0, len(k.vpes))
	for id := range k.vpes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	vpes := make([]*VPE, 0, len(ids))
	for _, id := range ids {
		vpes = append(vpes, k.vpes[id])
	}
	return vpes
}

// VPEOnPE returns the non-exited VPE bound to the given PE, or nil.
func (k *Kernel) VPEOnPE(peID int) *VPE {
	for _, vpe := range k.VPEs() {
		if !vpe.exited && vpe.PE != nil && vpe.PE.ID == peID {
			return vpe
		}
	}
	return nil
}

// CPU exposes the kernel CPU resource for utilisation statistics.
func (k *Kernel) CPU() *sim.Resource { return k.cpu }

func (k *Kernel) newVPE(name string, pe *tile.PE) *VPE {
	k.nextVPE++
	vpe := &VPE{
		ID:      k.nextVPE,
		Name:    name,
		PE:      pe,
		epCaps:  make(map[int]*Capability),
		exitSig: sim.NewSignal(k.Plat.Eng),
		kern:    k,
	}
	vpe.Caps = newCapTable(vpe)
	k.vpes[vpe.ID] = vpe
	return vpe
}

func (k *Kernel) allocPE(peType tile.CoreType) *tile.PE {
	for _, pe := range k.Plat.PEs {
		if !k.peUsed[pe.ID] && !pe.Crashed() && (peType == "" || pe.Type == peType) {
			k.peUsed[pe.ID] = true
			return pe
		}
	}
	return nil
}

// compute models kernel software work: it occupies the (single) kernel
// CPU for n cycles.
func (k *Kernel) compute(p *sim.Process, n sim.Time) {
	k.cpu.Acquire(p, 1)
	p.Sleep(n)
	k.cpu.Release(1)
}

// run is the kernel program: boot, then dispatch system calls forever.
func (k *Kernel) run(c *tile.Ctx) {
	p := c.P
	for _, pe := range k.Plat.PEs {
		if pe.ID == k.PE.ID {
			continue
		}
		if err := k.PE.DTU.SetPrivilegedRemote(p, pe.Node, false); err != nil {
			panic(fmt.Sprintf("core: downgrade of PE %d failed: %v", pe.ID, err))
		}
	}
	for _, init := range k.inits {
		k.installStdEPs(p, init.vpe)
		prog := init.prog
		init.vpe.started = true
		init.vpe.PE.Start(init.vpe.Name, prog)
	}
	k.booted = true
	k.dispatch(p)
}

// installStdEPs configures the standard endpoints of a VPE's PE: the
// syscall send gate, the syscall-reply receive gate, and the
// call-reply receive gate.
func (k *Kernel) installStdEPs(p *sim.Process, vpe *VPE) {
	node := vpe.PE.Node
	mustConfig(k.configRemote(p, node, kif.SyscallEP, dtu.Endpoint{
		Type: dtu.EpSend, Target: k.PE.Node, TargetEP: kif.KSyscallEP,
		Label: vpe.ID, Credits: 1, MsgSize: kif.MaxMsgSize,
	}))
	mustConfig(k.configRemote(p, node, kif.SysReplyEP, dtu.Endpoint{
		Type: dtu.EpReceive, BufAddr: kif.SysReplyBufAddr,
		SlotSize: kif.SysReplySlotSize, SlotCount: kif.SysReplySlots,
	}))
	mustConfig(k.configRemote(p, node, kif.CallReplyEP, dtu.Endpoint{
		Type: dtu.EpReceive, BufAddr: kif.CallReplyBufAddr,
		SlotSize: kif.CallReplySlotSize, SlotCount: kif.CallReplySlots,
	}))
}

// dispatch is the kernel main loop. It is a daemon for deadlock
// accounting: a run where only the kernel still waits for messages has
// terminated normally.
func (k *Kernel) dispatch(p *sim.Process) {
	p.SetDaemon()
	d := k.PE.DTU
	for {
		msg, ep := d.WaitMsg(p, kif.KSyscallEP, kif.KServReplyEP)
		if ep == kif.KServReplyEP {
			// Service-protocol reply: route to the waiting helper.
			k.compute(p, CostServReply)
			if pend, ok := k.pendingServ[msg.Label]; ok {
				pend.msg = msg
				pend.sig.Broadcast()
			} else {
				d.Ack(ep, msg)
			}
			continue
		}
		k.handleSyscall(p, msg)
	}
}

func (k *Kernel) handleSyscall(p *sim.Process, msg *dtu.Message) {
	vpe := k.vpes[msg.Label]
	is := kif.NewIStream(msg.Data)
	op := is.Op()
	k.compute(p, CostDispatch)
	if is.Err() != nil {
		// Too short to even carry an opcode.
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	k.Stats.Syscalls[op]++
	if k.Plat.Eng.Tracing() {
		k.Plat.Eng.Emit("kernel", fmt.Sprintf("syscall %s from vpe %d", op, msg.Label))
	}
	if tr := k.Plat.Obs; tr.On() {
		k.mSyscalls.Inc()
		tr.Metrics().Counter(MSyscalls, int(op)).Inc()
		tr.Emit(obs.Event{At: k.Plat.Eng.Now(), PE: int32(k.PE.Node), Layer: obs.LKernel,
			Kind: obs.EvKSyscallStart, Span: obs.SpanID(msg.Span),
			Arg0: uint64(op), Arg1: msg.Label})
	}
	if k.costDelta != 0 {
		// Seeded dispatch-cost regression (PerturbSyscallCost), charged
		// inside the [KSyscallStart, KSyscallEnd] window so the critical
		// path books it as kernel time.
		k.compute(p, k.costDelta)
	}
	if vpe == nil || vpe.exited {
		k.replyErr(p, msg, kif.ErrVPEGone)
		return
	}
	switch op {
	case kif.SysNoop:
		k.compute(p, CostNoop)
		k.replyErr(p, msg, kif.OK)
	case kif.SysCreateVPE:
		k.sysCreateVPE(p, vpe, is, msg)
	case kif.SysVPEStart:
		k.sysVPEStart(p, vpe, is, msg)
	case kif.SysVPEWait:
		k.sysVPEWait(p, vpe, is, msg)
	case kif.SysExit:
		k.sysExit(p, vpe, is, msg)
	case kif.SysReqMem:
		k.sysReqMem(p, vpe, is, msg)
	case kif.SysDeriveMem:
		k.sysDeriveMem(p, vpe, is, msg)
	case kif.SysCreateRGate:
		k.sysCreateRGate(p, vpe, is, msg)
	case kif.SysCreateSGate:
		k.sysCreateSGate(p, vpe, is, msg)
	case kif.SysActivate:
		k.sysActivate(p, vpe, is, msg)
	case kif.SysCreateSrv:
		k.sysCreateSrv(p, vpe, is, msg)
	case kif.SysOpenSess:
		k.sysOpenSess(p, vpe, is, msg)
	case kif.SysExchangeSess:
		k.sysExchangeSess(p, vpe, is, msg)
	case kif.SysDelegate, kif.SysObtain:
		k.sysExchangeVPE(p, vpe, is, msg, op == kif.SysObtain)
	case kif.SysRevoke:
		k.sysRevoke(p, vpe, is, msg)
	default:
		k.replyErr(p, msg, kif.ErrInvalidArgs)
	}
}

// reply marshals and sends a syscall reply.
func (k *Kernel) reply(p *sim.Process, msg *dtu.Message, o *kif.OStream) {
	k.compute(p, CostReply)
	if tr := k.Plat.Obs; tr.On() {
		tr.Emit(obs.Event{At: k.Plat.Eng.Now(), PE: int32(k.PE.Node), Layer: obs.LKernel,
			Kind: obs.EvKSyscallEnd, Span: obs.SpanID(msg.Span), Arg1: msg.Label})
	}
	if !msg.CanReply() {
		k.PE.DTU.Ack(kif.KSyscallEP, msg)
		return
	}
	if err := k.PE.DTU.Reply(p, kif.KSyscallEP, msg, o.Bytes()); err != nil {
		if errors.Is(err, dtu.ErrTimeout) {
			// The client (or its reply path) is gone; under fault
			// injection the DTU gives up after its retry budget. The
			// kernel must stay up — drop the reply and move on.
			k.Stats.RepliesDropped++
			if k.Plat.Eng.Tracing() {
				k.Plat.Eng.Emit("kernel", fmt.Sprintf("reply to vpe %d dropped: %v", msg.Label, err))
			}
			if tr := k.Plat.Obs; tr.On() {
				tr.Emit(obs.Event{At: k.Plat.Eng.Now(), PE: int32(k.PE.Node), Layer: obs.LKernel,
					Kind: obs.EvReplyDrop, Span: obs.SpanID(msg.Span), Arg0: msg.Label})
			}
			return
		}
		panic(fmt.Sprintf("core: syscall reply failed: %v", err))
	}
}

func (k *Kernel) replyErr(p *sim.Process, msg *dtu.Message, e kif.Error) {
	var o kif.OStream
	o.Err(e)
	k.reply(p, msg, &o)
}
