package core

import "sort"

// allocator is a first-fit free-list allocator over a byte range, used
// by the kernel to hand out DRAM regions (the kernel "decides which
// application can use which parts of which memories").
type allocator struct {
	free []span // sorted by addr, coalesced
}

//m3vet:resolve sharedstate owner free-list spans are mutated only by the kernel allocator on the engine goroutine
type span struct{ addr, size int }

func newAllocator(addr, size int) *allocator {
	return &allocator{free: []span{{addr, size}}}
}

// alloc returns the address of a free region of the given size, or
// false when no region fits.
func (a *allocator) alloc(size int) (int, bool) {
	if size <= 0 {
		return 0, false
	}
	for i := range a.free {
		if a.free[i].size >= size {
			addr := a.free[i].addr
			a.free[i].addr += size
			a.free[i].size -= size
			if a.free[i].size == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			return addr, true
		}
	}
	return 0, false
}

// release returns a region to the free list, coalescing neighbours.
func (a *allocator) release(addr, size int) {
	if size <= 0 {
		return
	}
	a.free = append(a.free, span{addr, size})
	sort.Slice(a.free, func(i, j int) bool { return a.free[i].addr < a.free[j].addr })
	out := a.free[:1]
	for _, s := range a.free[1:] {
		last := &out[len(out)-1]
		if last.addr+last.size >= s.addr {
			if end := s.addr + s.size; end > last.addr+last.size {
				last.size = end - last.addr
			}
		} else {
			out = append(out, s)
		}
	}
	a.free = out
}

// totalFree returns the free byte count (for tests and stats).
func (a *allocator) totalFree() int {
	n := 0
	for _, s := range a.free {
		n += s.size
	}
	return n
}
