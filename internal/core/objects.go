package core

import (
	"repro/internal/dtu"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/tile"
)

// VPE is a virtual processing element: the kernel's abstraction for an
// application activity, bound to exactly one PE at any point in time.
type VPE struct {
	ID   uint64
	Name string
	PE   *tile.PE

	Caps *CapTable

	// epCaps tracks which capability each endpoint of the VPE's DTU is
	// currently activated for, so revocation invalidates exactly the
	// endpoints that still belong to revoked capabilities.
	epCaps map[int]*Capability

	started  bool
	exited   bool
	exitCode int64
	exitSig  *sim.Signal

	kern *Kernel
}

// CrashExitCode is the exit code recorded for a VPE whose PE crashed
// and was reaped by the kernel's death watchdog.
const CrashExitCode int64 = -2

// Started reports whether the VPE's program was ever started.
func (v *VPE) Started() bool { return v.started }

// Exited reports whether the VPE's program has terminated.
func (v *VPE) Exited() bool { return v.exited }

// ExitCode returns the code passed to the exit system call.
func (v *VPE) ExitCode() int64 { return v.exitCode }

// RGateObj is the kernel object of a receive gate: a message buffer
// description bound to (at most) one receive endpoint at its owner's
// PE. Receive gates cannot be delegated (the paper: they can only be
// moved after invalidating all senders), so the object stays with its
// creator.
type RGateObj struct {
	Owner    *VPE
	SlotSize int // payload slot size, excluding the DTU header
	Slots    int

	// Activation state: EP < 0 until the owner activates the gate.
	// Helpers waiting for the activation sleep on the kernel-wide
	// actSig, which VPE teardown also broadcasts so they never outlive
	// a dead owner.
	EP      int
	BufAddr int
}

// Activated reports whether the gate is bound to an endpoint.
func (r *RGateObj) Activated() bool { return r.EP >= 0 }

// SGateObj is the kernel object of a send gate: the right to send
// messages to a receive gate, with a receiver-chosen label and a credit
// limit. Send gates are freely delegable.
type SGateObj struct {
	RGate   *RGateObj
	Label   uint64
	Credits int
}

// MemObj is the kernel object of a memory capability: a region of the
// DRAM module, of a PE-external SPM, or of the VPE's own PE memory.
type MemObj struct {
	Node  noc.NodeID
	Addr  int
	Size  int
	Perms dtu.Perm

	// root marks an allocation owned by the kernel's DRAM allocator;
	// revoking the root returns the region to the free list.
	root bool

	// stable marks a region pinned by the service supervisor: revoking
	// the root does NOT return it to the free list, so its contents
	// survive the owner's crash and a restarted incarnation can adopt
	// the same region (journal recovery, docs/RECOVERY.md).
	stable bool
}

// ServiceObj represents a registered service: its name and the
// kernel's private send path to the service's control gate, created at
// service registration (the paper, §4.5.3).
type ServiceObj struct {
	Name  string
	Owner *VPE
	RGate *RGateObj
	// sendEP is the kernel-DTU endpoint configured for the control
	// channel.
	sendEP int

	// Epoch is the service incarnation number: 1 for the first
	// registration of a name, bumped every time the supervisor (or
	// anyone) re-registers the same name. Kernel helpers that talk to a
	// service on behalf of older state must fence on it — a stale
	// ServiceObj must never receive new requests (m3vet: epochfence).
	Epoch uint64
}

// SessObj represents a session between a client VPE and a service. The
// Ident was chosen by the service when accepting the session; the
// kernel passes it back on every session operation, like a label, so
// the service finds its state without trusting the client.
type SessObj struct {
	Service *ServiceObj
	Ident   uint64
	Client  *VPE
}
