// Kernel-side fault coverage: these tests drive the real syscall
// channel (external test package, full tile/m3 stack) through the
// failure paths the chaos tier depends on — reaping a crashed VPE
// whose capabilities sit mid-delegation-tree, and surfacing a failed
// remote endpoint configuration to the requester instead of dropping
// it.
package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/fault"
	"repro/internal/kif"
	"repro/internal/m3"
	"repro/internal/sim"
	"repro/internal/tile"
)

// bootSystem builds a platform of n homogeneous PEs with the kernel on
// PE0 and no services.
func bootSystem(n int) (*sim.Engine, *tile.Platform, *core.Kernel) {
	eng := sim.NewEngine()
	plat := tile.NewPlatform(eng, tile.Homogeneous(n))
	kern := core.Boot(plat, 0)
	return eng, plat, kern
}

// TestReapSpansDelegationTree crashes a child VPE that holds a
// delegated memory capability and actively uses it. The watchdog must
// reap the child (crash exit code, empty capability table, every
// endpoint of the dead PE invalidated), the parent's deferred vpewait
// must complete, and the parent's subsequent revoke of the root
// capability — whose delegation tree spanned the crashed VPE — must
// succeed without tripping over the already-pruned subtree.
func TestReapSpansDelegationTree(t *testing.T) {
	eng, plat, kern := bootSystem(3)
	const delegatedSel = kif.CapSel(40)
	var (
		parentDone bool
		waitCode   int64
		victimID   uint64
	)
	_, err := kern.StartInit("parent", "", func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		mg, err := env.ReqMem(4096, dtu.PermRW)
		if err != nil {
			t.Error(err)
			return
		}
		vpe, err := env.NewVPE("victim", "")
		if err != nil {
			t.Error(err)
			return
		}
		victimID = vpe.VPEID
		if err := vpe.Delegate(mg.Sel(), delegatedSel, 1); err != nil {
			t.Error(err)
			return
		}
		if err := vpe.Run(func(child *m3.Env) {
			// Hammer the delegated capability until the crash: the cap is
			// activated on one of the child's endpoints when the PE dies.
			cmg := child.MemGateAt(delegatedSel, 4096)
			buf := make([]byte, 64)
			for {
				if err := cmg.Write(buf, 0); err != nil {
					return
				}
			}
		}); err != nil {
			t.Error(err)
			return
		}
		code, err := vpe.Wait()
		if err != nil {
			t.Error(err)
			return
		}
		waitCode = code
		// The tree below mg now contains a cap that died with the child;
		// revoking the root must still work.
		if err := env.Revoke(mg.Sel()); err != nil {
			t.Errorf("revoke spanning crashed VPE: %v", err)
			return
		}
		parentDone = true
		env.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	fault.Attach(kern, fault.Plan{
		Seed:            1,
		Crashes:         []fault.Crash{{PE: 2, At: 200000}},
		HeartbeatPeriod: 5000,
		MaxMissedBeats:  2,
	})
	eng.Run()
	if eng.Deadlocked() {
		t.Fatal("simulation deadlocked")
	}
	if !parentDone {
		t.Fatal("parent never finished")
	}
	if waitCode != core.CrashExitCode {
		t.Errorf("vpewait code = %d, want CrashExitCode", waitCode)
	}
	if kern.Stats.VPEsReaped != 1 {
		t.Errorf("VPEsReaped = %d, want 1", kern.Stats.VPEsReaped)
	}
	victim := kern.VPEByID(victimID)
	if victim == nil {
		t.Fatal("victim VPE not found")
	}
	if !victim.Exited() || victim.ExitCode() != core.CrashExitCode {
		t.Errorf("victim exited=%v code=%d, want crashed", victim.Exited(), victim.ExitCode())
	}
	if n := victim.Caps.Len(); n != 0 {
		t.Errorf("victim still holds %d caps (%v)", n, victim.Caps.Sels())
	}
	d := plat.PEs[2].DTU
	for ep := 0; ep < d.NumEndpoints(); ep++ {
		if typ := d.EP(ep).Type; typ != dtu.EpInvalid {
			t.Errorf("dead PE endpoint %d still configured as %s", ep, typ)
		}
	}
}

// TestActivateConfigErrorSurfaces is the regression for a silently
// dropped remote-configuration failure: activating a receive gate with
// a ringbuffer outside the PE's SPM fails at the remote DTU, and that
// failure must travel kernel -> syscall reply -> caller instead of
// leaving the gate half-activated.
func TestActivateConfigErrorSurfaces(t *testing.T) {
	eng, _, kern := bootSystem(2)
	ran := false
	_, err := kern.StartInit("app", "", func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		sel := env.AllocSel()
		var o kif.OStream
		o.Op(kif.SysCreateRGate).Sel(sel).U64(256).U64(4)
		if _, err := env.Syscall(&o); err != nil {
			t.Error(err)
			return
		}
		// BufAddr far beyond any SPM: the remote DTU rejects the
		// configuration and the kernel must relay the failure.
		var a kif.OStream
		a.Op(kif.SysActivate).Sel(sel).I64(int64(kif.FirstFreeEP)).U64(1 << 30)
		if _, err := env.Syscall(&a); !errors.Is(err, kif.ErrInvalidArgs) {
			t.Errorf("activate with bad ringbuffer: %v, want ErrInvalidArgs", err)
		}
		// The same gate activates fine through the library path, which
		// picks a valid buffer — the failure above was the config, not
		// the gate.
		if _, err := env.NewRecvGate(256, 4); err != nil {
			t.Errorf("valid rgate: %v", err)
		}
		ran = true
		env.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !ran {
		t.Fatal("app never finished")
	}
}
