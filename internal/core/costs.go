package core

import "repro/internal/sim"

// Kernel-side cycle costs, calibrated so the null system call lands at
// the paper's ~200 cycles total (~30 cycles of message transfers, ~170
// cycles of marshalling, DTU programming, and dispatch across client
// and kernel; §5.3).
const (
	// CostDispatch covers fetching the message, unmarshalling the
	// opcode, and finding the system-call function to call.
	CostDispatch sim.Time = 40
	// CostReply covers marshalling the reply and programming the DTU.
	CostReply sim.Time = 25

	CostNoop      sim.Time = 15
	CostCreateVPE sim.Time = 150
	CostVPEStart  sim.Time = 100
	CostVPEWait   sim.Time = 40
	CostExit      sim.Time = 100
	CostReqMem    sim.Time = 80
	CostDeriveMem sim.Time = 60
	CostCreateRG  sim.Time = 60
	CostCreateSG  sim.Time = 60
	CostActivate  sim.Time = 60
	CostCreateSrv sim.Time = 80
	CostOpenSess  sim.Time = 120
	CostExchange  sim.Time = 100
	CostPerCap    sim.Time = 40
	CostRevokeCap sim.Time = 30

	// CostServReply covers routing a service-protocol reply to the
	// waiting helper activity in the kernel dispatch loop.
	CostServReply sim.Time = 20
	// CostSessSetup covers installing the session capability after the
	// service accepted an open request.
	CostSessSetup sim.Time = 40

	// CostProbe covers issuing one liveness probe from the death
	// watchdog and interpreting the DTU's answer.
	CostProbe sim.Time = 20
	// CostReap covers the fixed part of reaping a crashed VPE
	// (per-capability revocation is billed at CostRevokeCap on top).
	CostReap sim.Time = 120

	// CostRespawn covers the supervisor restarting a supervised
	// service: VPE bookkeeping plus reprogramming the standard
	// endpoints of the spare PE.
	CostRespawn sim.Time = 200

	// DefaultRestartBackoff is the supervisor's delay before the first
	// respawn of a reaped service when the policy leaves it zero; it
	// doubles per further restart.
	DefaultRestartBackoff sim.Time = 10000
)
