package core

import (
	"errors"
	"fmt"

	"repro/internal/dtu"
	"repro/internal/noc"
	"repro/internal/sim"
)

// EnableDeathWatch starts the kernel's PE death watchdog: a kernel
// activity that periodically probes the DTU of every started,
// non-exited VPE. The DTU answers autonomously — a crashed core cannot
// and need not be involved — so "my core is dead" and "no answer after
// the full retry budget" (maxMiss consecutive times) both mean the VPE
// is gone and must be reaped.
//
// The watchdog runs while active() reports true and then returns, so
// an otherwise finished simulation does not tick forever. Only
// internal/fault enables it (m3vet: faultsite); without fault
// injection there is nothing to detect and no probe traffic exists.
func (k *Kernel) EnableDeathWatch(period sim.Time, maxMiss int, active func() bool) {
	if period <= 0 {
		panic("core: death-watch period must be positive")
	}
	if maxMiss <= 0 {
		maxMiss = 1
	}
	misses := make(map[uint64]int)
	k.Plat.Eng.Spawn("kernel-watchdog", func(p *sim.Process) {
		for active() {
			p.Sleep(period)
			for _, vpe := range k.VPEs() {
				if !vpe.started || vpe.exited {
					continue
				}
				k.compute(p, CostProbe)
				crashed, err := k.PE.DTU.Probe(p, vpe.PE.Node)
				if err != nil {
					misses[vpe.ID]++
					if k.Plat.Eng.Tracing() {
						k.Plat.Eng.Emit("kernel", fmt.Sprintf("probe vpe %d missed (%d/%d): %v",
							vpe.ID, misses[vpe.ID], maxMiss, err))
					}
					if misses[vpe.ID] >= maxMiss {
						k.reapVPE(p, vpe)
					}
					continue
				}
				misses[vpe.ID] = 0
				if crashed {
					k.reapVPE(p, vpe)
				}
			}
		}
	})
}

// reapVPE tears down a VPE whose core died: record the crash exit
// code, revoke every capability (which closes service sessions and
// releases memory, exactly like a normal exit), deconfigure every
// endpoint a revoked capability was still activated on at a *live*
// PE, and finally blanket-invalidate all endpoints of the dead PE so
// no communication right survives the crash in hardware. The PE is
// never returned to the allocator — its core is gone for good.
func (k *Kernel) reapVPE(p *sim.Process, vpe *VPE) {
	if vpe.exited {
		return
	}
	k.Stats.VPEsReaped++
	if k.Plat.Eng.Tracing() {
		k.Plat.Eng.Emit("kernel", fmt.Sprintf("reap vpe %d (%s): pe%d is dead", vpe.ID, vpe.Name, vpe.PE.ID))
	}
	vpe.exited = true
	vpe.exitCode = CrashExitCode
	type actRec struct {
		vpe *VPE
		ep  int
	}
	var acts []actRec
	dropped := 0
	vpe.Caps.revokeAll(func(c *Capability) {
		dropped++
		if v := c.actVPE; v != nil && !v.exited && v.epCaps[c.actEP] == c {
			if v != vpe {
				// Endpoints at the dead PE get the blanket invalidation
				// below; only survivors need a targeted one.
				acts = append(acts, actRec{v, c.actEP})
			}
			delete(v.epCaps, c.actEP)
		}
		k.onDrop(c)
	})
	k.compute(p, CostReap+CostRevokeCap*sim.Time(dropped))
	for _, a := range acts {
		k.invalidateEP(p, a.vpe.PE.Node, a.ep)
	}
	for ep := 0; ep < vpe.PE.DTU.NumEndpoints(); ep++ {
		k.invalidateEP(p, vpe.PE.Node, ep)
	}
	vpe.exitSig.Broadcast()
	k.actSig.Broadcast()
	// Supervisor hook: a supervised service gets respawned on a spare
	// PE after its policy's backoff (no-op for everything else).
	k.maybeRespawn(vpe)
}

// invalidateEP deconfigures one endpoint, tolerating an unreachable
// target: when even the DTU of a dead PE stops answering, the revoked
// rights die with the hardware that held them. Any other failure is an
// isolation hole and panics, like mustConfig on the happy paths.
func (k *Kernel) invalidateEP(p *sim.Process, node noc.NodeID, ep int) {
	err := k.configRemote(p, node, ep, dtu.Endpoint{Type: dtu.EpInvalid})
	if err == nil {
		return
	}
	if errors.Is(err, dtu.ErrTimeout) {
		k.Stats.FailedInvalidations++
		if k.Plat.Eng.Tracing() {
			k.Plat.Eng.Emit("kernel", fmt.Sprintf("invalidate ep %d at node %d failed: %v", ep, node, err))
		}
		return
	}
	panic(fmt.Sprintf("core: endpoint invalidation failed: %v", err))
}
