package core

import (
	"testing"
	"testing/quick"

	"repro/internal/kif"
)

func table() *CapTable { return newCapTable(&VPE{ID: 1, Name: "t"}) }

func TestInstallGet(t *testing.T) {
	tab := table()
	obj := &MemObj{Size: 10}
	c, err := tab.Install(5, CapMem, obj)
	if err != kif.OK {
		t.Fatal(err)
	}
	if c.Sel() != 5 {
		t.Fatalf("sel = %d", c.Sel())
	}
	got, err := tab.Get(5, CapMem)
	if err != kif.OK || got.Obj != obj {
		t.Fatalf("get = %v, %v", got, err)
	}
	if _, err := tab.Get(5, CapVPE); err != kif.ErrNoSuchCap {
		t.Fatalf("type mismatch should fail, got %v", err)
	}
	if _, err := tab.Get(6, CapInvalid); err != kif.ErrNoSuchCap {
		t.Fatalf("missing sel should fail, got %v", err)
	}
	if _, err := tab.Install(5, CapMem, obj); err != kif.ErrExists {
		t.Fatalf("double install should fail, got %v", err)
	}
}

func TestDelegateAndRevokeRecursive(t *testing.T) {
	a, b, c := table(), table(), table()
	obj := &MemObj{Size: 100}
	root, _ := a.Install(1, CapMem, obj)
	// a -> b -> c chain.
	bc, err := root.DelegateTo(b, 2, nil)
	if err != kif.OK {
		t.Fatal(err)
	}
	if _, err := bc.DelegateTo(c, 3, nil); err != kif.OK {
		t.Fatal(err)
	}
	var dropped []*Capability
	root.Revoke(func(cp *Capability) { dropped = append(dropped, cp) })
	if len(dropped) != 3 {
		t.Fatalf("dropped %d caps, want 3", len(dropped))
	}
	for _, tab := range []*CapTable{a, b, c} {
		if tab.Len() != 0 {
			t.Fatalf("table still holds %d caps", tab.Len())
		}
	}
	// Root must be dropped last (children first).
	if dropped[len(dropped)-1] != root {
		t.Fatal("root was not dropped last")
	}
}

func TestRevokeMidChainKeepsAncestors(t *testing.T) {
	a, b, c := table(), table(), table()
	root, _ := a.Install(1, CapMem, &MemObj{})
	mid, _ := root.DelegateTo(b, 1, nil)
	_, _ = mid.DelegateTo(c, 1, nil)
	mid.Revoke(nil)
	if a.Len() != 1 {
		t.Fatal("ancestor removed by mid-chain revoke")
	}
	if b.Len() != 0 || c.Len() != 0 {
		t.Fatal("descendants not removed")
	}
	if len(root.children) != 0 {
		t.Fatal("root still references revoked child")
	}
}

func TestInstallChildTyped(t *testing.T) {
	a := table()
	rg := &RGateObj{}
	rcap, _ := a.Install(1, CapRGate, rg)
	sg, err := a.InstallChild(rcap, 2, CapSGate, &SGateObj{RGate: rg})
	if err != kif.OK {
		t.Fatal(err)
	}
	if sg.Type != CapSGate {
		t.Fatalf("child type = %v", sg.Type)
	}
	rcap.Revoke(nil)
	if a.Len() != 0 {
		t.Fatal("revoking rgate must drop sgates")
	}
}

// TestRevokeTreeProperty builds random delegation trees and checks that
// revoking the root always empties every table and visits every node
// exactly once.
func TestRevokeTreeProperty(t *testing.T) {
	f := func(shape []uint8) bool {
		tables := []*CapTable{table(), table(), table(), table()}
		root, _ := tables[0].Install(1, CapMem, &MemObj{})
		nodes := []*Capability{root}
		sel := kif.CapSel(10)
		for _, s := range shape {
			parent := nodes[int(s)%len(nodes)]
			tab := tables[int(s/16)%len(tables)]
			sel++
			child, err := parent.DelegateTo(tab, sel, nil)
			if err != kif.OK {
				return false
			}
			nodes = append(nodes, child)
		}
		count := 0
		root.Revoke(func(*Capability) { count++ })
		if count != len(nodes) {
			return false
		}
		for _, tab := range tables {
			if tab.Len() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorFirstFit(t *testing.T) {
	a := newAllocator(0, 1000)
	x, ok := a.alloc(100)
	if !ok || x != 0 {
		t.Fatalf("alloc = %d, %v", x, ok)
	}
	y, ok := a.alloc(200)
	if !ok || y != 100 {
		t.Fatalf("alloc = %d, %v", y, ok)
	}
	a.release(x, 100)
	z, ok := a.alloc(50)
	if !ok || z != 0 {
		t.Fatalf("reuse alloc = %d, %v", z, ok)
	}
	if _, ok := a.alloc(10000); ok {
		t.Fatal("oversized alloc should fail")
	}
	if _, ok := a.alloc(0); ok {
		t.Fatal("zero alloc should fail")
	}
}

func TestAllocatorCoalesce(t *testing.T) {
	a := newAllocator(0, 300)
	x, _ := a.alloc(100)
	y, _ := a.alloc(100)
	z, _ := a.alloc(100)
	a.release(x, 100)
	a.release(z, 100)
	a.release(y, 100) // middle release must coalesce all three
	w, ok := a.alloc(300)
	if !ok || w != 0 {
		t.Fatalf("coalesced alloc = %d, %v (free=%d)", w, ok, a.totalFree())
	}
}

func TestAllocatorProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		a := newAllocator(0, 1<<16)
		type held struct{ addr, size int }
		var allocs []held
		for _, op := range ops {
			if op%3 != 0 && len(allocs) > 0 {
				// Release a random held allocation.
				i := int(op) % len(allocs)
				a.release(allocs[i].addr, allocs[i].size)
				allocs = append(allocs[:i], allocs[i+1:]...)
				continue
			}
			size := int(op%1024) + 1
			if addr, ok := a.alloc(size); ok {
				// No overlap with existing allocations.
				for _, h := range allocs {
					if addr < h.addr+h.size && h.addr < addr+size {
						return false
					}
				}
				allocs = append(allocs, held{addr, size})
			}
		}
		total := 0
		for _, h := range allocs {
			total += h.size
		}
		return a.totalFree()+total == 1<<16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
