package core

import (
	"errors"
	"sort"

	"repro/internal/dtu"
	"repro/internal/kif"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/sim"
)

// sysCreateSrv: createsrv(dstSel, rgateSel, name) -> err. Registers a
// service and creates the kernel's private control channel to it: a
// kernel-DTU send endpoint targeting the service's (already activated)
// control receive gate.
func (k *Kernel) sysCreateSrv(p *sim.Process, vpe *VPE, is *kif.IStream, msg *dtu.Message) {
	dstSel, rgateSel, name := is.Sel(), is.Sel(), is.Str()
	if is.Err() != nil || name == "" {
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	if _, exists := k.services[name]; exists {
		k.replyErr(p, msg, kif.ErrExists)
		return
	}
	rcap, err := vpe.Caps.Get(rgateSel, CapRGate)
	if err != kif.OK {
		k.replyErr(p, msg, err)
		return
	}
	rg := rcap.Obj.(*RGateObj)
	if rg.Owner != vpe || !rg.Activated() {
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	if k.nextSrvEP >= k.PE.DTU.NumEndpoints() {
		k.replyErr(p, msg, kif.ErrNoSpace)
		return
	}
	k.compute(p, CostCreateSrv)
	sendEP := k.nextSrvEP
	k.nextSrvEP++
	mustConfig(k.PE.DTU.Configure(sendEP, dtu.Endpoint{
		Type: dtu.EpSend, Target: vpe.PE.Node, TargetEP: rg.EP,
		Label: 0, Credits: rg.Slots, MsgSize: rg.SlotSize,
	}))
	k.srvEpochs[name]++
	obj := &ServiceObj{Name: name, Owner: vpe, RGate: rg, sendEP: sendEP, Epoch: k.srvEpochs[name]}
	if _, e := vpe.Caps.Install(dstSel, CapService, obj); e != kif.OK {
		k.replyErr(p, msg, e)
		return
	}
	k.services[name] = obj
	k.replyErr(p, msg, kif.OK)
}

// callService sends a control message to a service and waits for its
// reply, correlated via the reply label. The calling helper blocks;
// the kernel CPU is free in the meantime.
//
// Both wait points — credits of the control channel and the reply
// itself — honor the armed service-call deadline: a dead or wedged
// service earns the caller kif.ErrTimeout instead of stalling the
// helper forever. With no deadline armed (every fault-free run) the
// waits are unbounded and not a single extra event is scheduled.
// Callers fence stale incarnations with serviceCurrent before calling.
//
// With overload control armed (EnableOverload) the call first passes
// the service's circuit breaker and shed controller, its header
// carries the deadline so downstream DTUs can drop it once expired,
// and the outcome feeds the breaker: deadline misses count as
// failures, admission refusals by the service DTU do not (the service
// answered promptly — that is control, not collapse).
func (k *Kernel) callService(p *sim.Process, svc *ServiceObj, payload []byte, span obs.SpanID, pr overload.Priority) (*dtu.Message, kif.Error) {
	if aerr := k.admitServiceCall(svc, span, pr); aerr != kif.OK {
		return nil, aerr
	}
	deadline := k.servDeadline
	k.nextServOp++
	opID := k.nextServOp
	pend := &servPending{sig: sim.NewSignal(k.Plat.Eng)}
	k.pendingServ[opID] = pend
	k.Stats.ServiceCalls++
	t0 := k.Plat.Eng.Now()
	if tr := k.Plat.Obs; tr.On() {
		tr.Emit(obs.Event{At: t0, PE: int32(k.PE.Node), Layer: obs.LKernel,
			Kind: obs.EvSvcCallStart, Span: span,
			Arg0: uint64(svc.sendEP), Arg1: opID})
	}
	// Arm the span and deadline registers once: the DTU consumes them
	// only when a send succeeds, so credit-denied retries keep both.
	k.PE.DTU.StampSpan(span)
	if k.overload != nil && deadline > 0 {
		k.PE.DTU.StampDeadline(deadline)
	}
	defer func() {
		if tr := k.Plat.Obs; tr.On() {
			now := k.Plat.Eng.Now()
			tr.Emit(obs.Event{At: now, PE: int32(k.PE.Node), Layer: obs.LKernel,
				Kind: obs.EvSvcCallEnd, Span: span,
				Arg0: uint64(svc.sendEP), Arg1: opID})
			tr.Hist(obs.HSvcCall).Observe(uint64(now - t0))
		}
	}()
	for {
		err := k.PE.DTU.Send(p, svc.sendEP, payload, kif.KServReplyEP, opID)
		if err == nil {
			break
		}
		if errors.Is(err, dtu.ErrNoCredits) {
			// Bracket the credit wait for critical-path attribution.
			if tr := k.Plat.Obs; tr.On() {
				tr.Emit(obs.Event{At: k.Plat.Eng.Now(), PE: int32(k.PE.Node), Layer: obs.LDTU,
					Kind: obs.EvCreditStall, Span: span, Arg0: uint64(svc.sendEP)})
			}
			werr := k.PE.DTU.WaitCreditsDeadline(p, svc.sendEP, deadline)
			if tr := k.Plat.Obs; tr.On() {
				expired := uint64(0)
				if werr != nil {
					expired = 1
				}
				tr.Emit(obs.Event{At: k.Plat.Eng.Now(), PE: int32(k.PE.Node), Layer: obs.LDTU,
					Kind: obs.EvCreditOK, Span: span, Arg0: uint64(svc.sendEP), Arg2: expired})
			}
			if werr == nil {
				continue
			}
			if errors.Is(werr, dtu.ErrTimeout) {
				delete(k.pendingServ, opID)
				k.Stats.ServiceTimeouts++
				k.noteServiceCallOutcome(svc, kif.ErrTimeout)
				return nil, kif.ErrTimeout
			}
		}
		delete(k.pendingServ, opID)
		return nil, kif.ErrNoSuchService
	}
	if deadline > 0 {
		expired := false
		k.Plat.Eng.Schedule(deadline, func() {
			// Only wake the helper if this very call is still pending
			// and unanswered; a reply that raced the timer wins.
			if k.pendingServ[opID] == pend && pend.msg == nil {
				expired = true
				pend.sig.Broadcast()
			}
		})
		for pend.msg == nil && !expired {
			pend.sig.Wait(p)
		}
	} else {
		for pend.msg == nil {
			pend.sig.Wait(p)
		}
	}
	delete(k.pendingServ, opID)
	if pend.msg == nil {
		// A reply arriving after this point finds no pending record and
		// is acked by the dispatcher, which is exactly the behavior for
		// any other unsolicited message on the reply gate.
		k.Stats.ServiceTimeouts++
		k.noteServiceCallOutcome(svc, kif.ErrTimeout)
		return nil, kif.ErrTimeout
	}
	if pend.msg.Overloaded() {
		// The service DTU refused the request at its admission watermark
		// and fast-failed it; the slot never held real work, so this is
		// not a breaker failure — callers retry under a bounded budget.
		k.PE.DTU.Ack(kif.KServReplyEP, pend.msg)
		k.Stats.CallsRefused++
		return nil, kif.ErrOverload
	}
	if pend.msg.Expired() {
		// The request outlived its deadline in flight and was dropped
		// before execution: a deadline miss, and breaker food.
		k.PE.DTU.Ack(kif.KServReplyEP, pend.msg)
		k.Stats.ServiceTimeouts++
		k.noteServiceCallOutcome(svc, kif.ErrTimeout)
		return nil, kif.ErrTimeout
	}
	k.noteServiceCallOutcome(svc, kif.OK)
	return pend.msg, kif.OK
}

// sysOpenSess: opensess(dstSel, name, arg) -> err. The kernel asks the
// service to accept a session; the service's answer carries the
// session identifier it chose. Handled by a helper activity because it
// blocks on the service.
func (k *Kernel) sysOpenSess(p *sim.Process, vpe *VPE, is *kif.IStream, msg *dtu.Message) {
	dstSel, name, arg := is.Sel(), is.Str(), is.Str()
	if is.Err() != nil {
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	svc, ok := k.services[name]
	if !ok {
		k.replyErr(p, msg, kif.ErrNoSuchService)
		return
	}
	k.compute(p, CostOpenSess)
	k.Plat.Eng.Spawn("kernel-opensess", func(hp *sim.Process) {
		if !k.serviceCurrent(svc) {
			// The registration this open raced against is gone (service
			// died, possibly already re-registered at a newer epoch);
			// the client must retry against the current incarnation.
			k.replyErr(hp, msg, kif.ErrNoSuchService)
			return
		}
		var req kif.OStream
		req.U64(uint64(kif.ServOpen)).Str(arg)
		// Session opens are the first work to shed under load: refusing a
		// new session is cheap, abandoning an established one is not.
		//m3vet:nodeadline callService applies servDeadline/overload config internally
		resp, cerr := k.callService(hp, svc, req.Bytes(), obs.SpanID(msg.Span), overload.PriorityLow)
		if cerr != kif.OK {
			k.replyErr(hp, msg, cerr)
			return
		}
		ris := kif.NewIStream(resp.Data)
		serr := ris.ErrCode()
		ident := ris.U64()
		k.PE.DTU.Ack(kif.KServReplyEP, resp)
		k.compute(hp, CostSessSetup)
		if serr != kif.OK {
			k.replyErr(hp, msg, serr)
			return
		}
		sess := &SessObj{Service: svc, Ident: ident, Client: vpe}
		if vpe.exited {
			// The client died (crash reap) while the service accepted
			// the session: close it right back instead of installing a
			// capability into a torn-down table.
			k.closeSession(sess)
			k.replyErr(hp, msg, kif.ErrVPEGone)
			return
		}
		svcCap, gerr := svc.Owner.Caps.Get(findServiceSel(svc), CapService)
		var ierr kif.Error
		if gerr == kif.OK {
			_, ierr = vpe.Caps.InstallChild(svcCap, dstSel, CapSession, sess)
		} else {
			_, ierr = vpe.Caps.Install(dstSel, CapSession, sess)
		}
		if ierr != kif.OK {
			k.replyErr(hp, msg, ierr)
			return
		}
		k.replyErr(hp, msg, kif.OK)
	})
}

// findServiceSel locates the service capability in its owner's table so
// sessions can hang off it in the revocation tree. The table is walked
// in sorted selector order so a (hypothetical) duplicate registration
// always resolves to the same parent across runs.
func findServiceSel(svc *ServiceObj) kif.CapSel {
	caps := svc.Owner.Caps.caps
	sels := make([]kif.CapSel, 0, len(caps))
	for sel := range caps {
		sels = append(sels, sel)
	}
	sort.Slice(sels, func(i, j int) bool { return sels[i] < sels[j] })
	for _, sel := range sels {
		if caps[sel].Obj == svc {
			return sel
		}
	}
	return kif.InvalidSel
}

// sysExchangeSess: exchangesess(sessSel, obtain, capsStart, capsCount,
// args) -> (err, retArgs). The kernel forwards the request to the
// service, which decides and names capabilities from its own table;
// the kernel then moves them between the service's and the client's
// tables. This is the mechanism behind m3fs handing out memory
// capabilities for file extents.
func (k *Kernel) sysExchangeSess(p *sim.Process, vpe *VPE, is *kif.IStream, msg *dtu.Message) {
	sessSel := is.Sel()
	obtain := is.U64() != 0
	capsStart, capsCount := is.Sel(), is.U64()
	args := is.Blob()
	if is.Err() != nil || capsCount > 32 {
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	cap, err := vpe.Caps.Get(sessSel, CapSession)
	if err != kif.OK {
		k.replyErr(p, msg, err)
		return
	}
	sess := cap.Obj.(*SessObj)
	k.compute(p, CostExchange)
	k.Plat.Eng.Spawn("kernel-exchange", func(hp *sim.Process) {
		if !k.serviceCurrent(sess.Service) {
			// Epoch fence: the session belongs to a dead incarnation of
			// the service. Its successor never heard of the session
			// ident, so the exchange must fail here, cleanly, instead of
			// confusing the new incarnation.
			k.replyErr(hp, msg, kif.ErrNoSuchSession)
			return
		}
		var req kif.OStream
		req.U64(uint64(kif.ServExchange)).U64(sess.Ident)
		if obtain {
			req.U64(1)
		} else {
			req.U64(0)
		}
		req.U64(capsCount).Blob(args)
		//m3vet:nodeadline callService applies servDeadline/overload config internally
		resp, cerr := k.callService(hp, sess.Service, req.Bytes(), obs.SpanID(msg.Span), overload.PriorityNormal)
		if cerr != kif.OK {
			k.replyErr(hp, msg, cerr)
			return
		}
		ris := kif.NewIStream(resp.Data)
		serr := ris.ErrCode()
		srvStart := ris.Sel()
		srvCount := ris.U64()
		retArgs := ris.Blob()
		k.PE.DTU.Ack(kif.KServReplyEP, resp)
		if serr != kif.OK {
			k.replyErr(hp, msg, serr)
			return
		}
		if vpe.exited || sess.Service.Owner.exited {
			// Client or service died while the exchange was in flight;
			// their tables are gone, nothing may be moved.
			k.replyErr(hp, msg, kif.ErrVPEGone)
			return
		}
		if srvCount > capsCount {
			srvCount = capsCount
		}
		k.compute(hp, CostPerCap*sim.Time(srvCount+1))
		owner := sess.Service.Owner.Caps
		var xerr kif.Error = kif.OK
		if srvCount > 0 {
			if obtain {
				xerr = exchangeCaps(owner, vpe.Caps, srvStart, capsStart, srvCount)
			} else {
				xerr = exchangeCaps(vpe.Caps, owner, capsStart, srvStart, srvCount)
			}
		}
		if xerr != kif.OK {
			k.replyErr(hp, msg, xerr)
			return
		}
		var o kif.OStream
		o.Err(kif.OK).Blob(retArgs)
		k.reply(hp, msg, &o)
	})
}
