// Supervisor coverage: these tests drive the restart machinery directly
// — a supervised service program that registers itself and parks — and
// check the respawn placement, epoch bumps, stable-region survival,
// exponential backoff, and the restart budget, without the full m3fs
// protocol on top (the chaos tier covers that end to end).
package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/fault"
	"repro/internal/kif"
	"repro/internal/m3"
	"repro/internal/sim"
	"repro/internal/tile"
)

// incarnation records what one boot of the supervised service observed.
type incarnation struct {
	pe    int
	gen   byte     // generation counter read from the stable region
	epoch uint64   // service epoch right after registration
	at    sim.Time // registration time
}

// superviseEcho builds the supervised test service: every incarnation
// re-adopts the stable region, bumps the generation marker in it,
// registers the "echo" service, records what it saw, and parks as a
// daemon on its control gate.
func superviseEcho(t *testing.T, eng *sim.Engine, kern *core.Kernel, boots *[]incarnation) core.Program {
	return func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		mg, err := env.ReqMemStable(4096, dtu.PermRW)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 8)
		if err := mg.Read(buf, 0); err != nil {
			t.Error(err)
			return
		}
		gen := buf[0]
		buf[0]++
		if err := mg.Write(buf, 0); err != nil {
			t.Error(err)
			return
		}
		rg, err := env.NewRecvGate(256, 4)
		if err != nil {
			t.Error(err)
			return
		}
		var o kif.OStream
		o.Op(kif.SysCreateSrv).Sel(env.AllocSel()).Sel(rg.Sel()).Str("echo")
		if _, err := env.Syscall(&o); err != nil {
			t.Error(err)
			return
		}
		*boots = append(*boots, incarnation{
			pe: ctx.PE.ID, gen: gen, epoch: kern.ServiceEpoch("echo"), at: eng.Now(),
		})
		env.P().SetDaemon()
		for {
			env.DTU().WaitMsg(env.P(), rg.EP())
		}
	}
}

// TestSupervisorRespawnEpochAndBackoff crashes a supervised service
// twice. Each death must respawn it on a fresh spare PE (crashed cores
// never return to the pool), under a bumped service epoch, with the
// stable region's contents intact, and no earlier than the reap plus
// the doubling backoff.
func TestSupervisorRespawnEpochAndBackoff(t *testing.T) {
	eng, _, kern := bootSystem(4)
	const backoff = sim.Time(4000)
	crashes := []fault.Crash{{PE: 1, At: 50000}, {PE: 2, At: 150000}}

	var boots []incarnation
	_, err := kern.StartInitSupervised("echo", "", superviseEcho(t, eng, kern, &boots),
		core.RestartPolicy{MaxRestarts: 2, Backoff: backoff})
	if err != nil {
		t.Fatal(err)
	}
	fault.Attach(kern, fault.Plan{
		Seed:            1,
		Crashes:         crashes,
		HeartbeatPeriod: 5000,
		MaxMissedBeats:  2,
	})
	eng.Run()
	if eng.Deadlocked() {
		t.Fatal("simulation deadlocked")
	}
	if len(boots) != 3 {
		t.Fatalf("service booted %d times, want 3 (initial + 2 restarts)", len(boots))
	}
	if kern.Stats.ServiceRestarts != 2 {
		t.Errorf("ServiceRestarts = %d, want 2", kern.Stats.ServiceRestarts)
	}
	for i, b := range boots {
		if b.pe != i+1 {
			t.Errorf("incarnation %d ran on pe%d, want pe%d (crashed PEs never reused)", i, b.pe, i+1)
		}
		if int(b.gen) != i {
			t.Errorf("incarnation %d read generation %d, want %d (stable region must survive)", i, b.gen, i)
		}
		if b.epoch != uint64(i+1) {
			t.Errorf("incarnation %d registered with epoch %d, want %d", i, b.epoch, i+1)
		}
	}
	// The respawn runs after the reap (itself after the crash) plus the
	// policy backoff, which doubles per restart of the same VPE.
	for i, d := range []sim.Time{backoff, 2 * backoff} {
		if earliest := crashes[i].At + d; boots[i+1].at < earliest {
			t.Errorf("restart %d registered at %d, before crash+backoff %d", i+1, boots[i+1].at, earliest)
		}
	}
	if got := kern.ServiceEpoch("echo"); got != 3 {
		t.Errorf("final service epoch = %d, want 3", got)
	}
}

// TestSupervisorBudgetExhausted crashes a MaxRestarts=1 service twice:
// the second death must not be respawned, leaving the service
// unregistered — the state in which clients get clean session-dead
// errors instead of hanging on a ghost.
func TestSupervisorBudgetExhausted(t *testing.T) {
	eng, _, kern := bootSystem(4)
	var boots []incarnation
	_, err := kern.StartInitSupervised("echo", "", superviseEcho(t, eng, kern, &boots),
		core.RestartPolicy{MaxRestarts: 1, Backoff: 4000})
	if err != nil {
		t.Fatal(err)
	}
	fault.Attach(kern, fault.Plan{
		Seed:            1,
		Crashes:         []fault.Crash{{PE: 1, At: 50000}, {PE: 2, At: 150000}},
		HeartbeatPeriod: 5000,
		MaxMissedBeats:  2,
	})
	eng.Run()
	if eng.Deadlocked() {
		t.Fatal("simulation deadlocked")
	}
	if len(boots) != 2 {
		t.Fatalf("service booted %d times, want 2 (budget is one restart)", len(boots))
	}
	if kern.Stats.ServiceRestarts != 1 {
		t.Errorf("ServiceRestarts = %d, want 1", kern.Stats.ServiceRestarts)
	}
	if kern.Stats.VPEsReaped != 2 {
		t.Errorf("VPEsReaped = %d, want 2", kern.Stats.VPEsReaped)
	}
	if got := kern.ServiceEpoch("echo"); got != 0 {
		t.Errorf("service still registered with epoch %d after budget exhaustion", got)
	}
}

// TestSupervisorRejectsNegativeBudget pins the argument contract.
func TestSupervisorRejectsNegativeBudget(t *testing.T) {
	_, _, kern := bootSystem(2)
	_, err := kern.StartInitSupervised("echo", "", func(ctx *tile.Ctx) {},
		core.RestartPolicy{MaxRestarts: -1})
	if err == nil {
		t.Fatal("negative restart budget accepted")
	}
}
