package linuxos

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/sim"
)

func lx(t *testing.T, cold bool) (*sim.Engine, *System) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, New(eng, ProfileXtensa, cold)
}

func TestFileRoundTrip(t *testing.T) {
	eng, s := lx(t, false)
	payload := bytes.Repeat([]byte("lx"), 5000)
	var got []byte
	s.Spawn("io", func(pr *Proc) {
		fd, err := pr.Open("/f", OWrite|OCreate)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := pr.Write(fd, payload); err != nil {
			t.Error(err)
		}
		if err := pr.Close(fd); err != nil {
			t.Error(err)
		}
		fd, err = pr.Open("/f", ORead)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		for {
			n, rerr := pr.Read(fd, buf)
			got = append(got, buf[:n]...)
			if rerr != nil {
				break
			}
		}
		_ = pr.Close(fd)
	})
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("read %d bytes, want %d", len(got), len(payload))
	}
}

func TestSyscallCostCharged(t *testing.T) {
	eng, s := lx(t, false)
	var took sim.Time
	s.Spawn("stat", func(pr *Proc) {
		start := pr.P().Now()
		_, _ = pr.Stat("/")
		took = pr.P().Now() - start
	})
	eng.Run()
	if took < ProfileXtensa.SyscallCost {
		t.Fatalf("stat took %d, want >= syscall cost %d", took, ProfileXtensa.SyscallCost)
	}
}

func TestColdCacheSlower(t *testing.T) {
	run := func(cold bool) sim.Time {
		eng, s := lx(t, cold)
		data := make([]byte, 256<<10)
		var took sim.Time
		s.Spawn("io", func(pr *Proc) {
			fd, _ := pr.Open("/f", OWrite|OCreate)
			_, _ = pr.Write(fd, data)
			_ = pr.Close(fd)
			fd, _ = pr.Open("/f", ORead)
			start := pr.P().Now()
			buf := make([]byte, 4096)
			for {
				if _, err := pr.Read(fd, buf); err != nil {
					break
				}
			}
			took = pr.P().Now() - start
			_ = pr.Close(fd)
		})
		eng.Run()
		return took
	}
	warm, cold := run(false), run(true)
	if cold <= warm {
		t.Fatalf("cold read (%d) must be slower than warm (%d)", cold, warm)
	}
	// Cold adds ~0.625 cycles/byte (20 per 32-byte line).
	extra := float64(cold-warm) / float64(256<<10)
	if extra < 0.5 || extra > 0.8 {
		t.Fatalf("cold per-byte overhead = %f, want ~0.625", extra)
	}
}

func TestPipeForkTransfer(t *testing.T) {
	eng, s := lx(t, false)
	const total = 64 << 10
	var got int
	s.Spawn("parent", func(pr *Proc) {
		rfd, wfd := pr.Pipe()
		child := pr.Fork("writer", func(ch *Proc) {
			_ = ch.Close(rfd)
			chunk := make([]byte, 4096)
			for i := 0; i < total/len(chunk); i++ {
				if _, err := ch.Write(wfd, chunk); err != nil {
					t.Error(err)
					return
				}
			}
			_ = ch.Close(wfd)
		})
		_ = pr.Close(wfd)
		buf := make([]byte, 4096)
		for {
			n, err := pr.Read(rfd, buf)
			got += n
			if err != nil {
				if !errors.Is(err, io.EOF) {
					t.Error(err)
				}
				break
			}
		}
		_ = pr.Close(rfd)
		pr.Wait(child)
	})
	eng.Run()
	if got != total {
		t.Fatalf("received %d, want %d", got, total)
	}
	if s.Stats.OS == 0 || s.Stats.Xfer == 0 {
		t.Fatalf("stats not accumulated: %+v", s.Stats)
	}
}

func TestPipeBlocksWhenFull(t *testing.T) {
	eng, s := lx(t, false)
	// Writer pushes more than the pipe buffer with no reader: it must
	// block forever (simulation quiesces with the process alive).
	var wrote int
	s.Spawn("writer", func(pr *Proc) {
		_, wfd := pr.Pipe()
		buf := make([]byte, 32<<10)
		for i := 0; i < 4; i++ {
			n, _ := pr.Write(wfd, buf)
			wrote += n
		}
	})
	eng.Run()
	if wrote >= 128<<10 {
		t.Fatalf("writer never blocked (wrote %d)", wrote)
	}
	if eng.LiveProcesses() != 1 {
		t.Fatalf("live = %d, want 1 blocked writer", eng.LiveProcesses())
	}
}

func TestMetaOps(t *testing.T) {
	eng, s := lx(t, false)
	s.Spawn("meta", func(pr *Proc) {
		if err := pr.Mkdir("/d"); err != nil {
			t.Error(err)
		}
		fd, err := pr.Open("/d/f", OWrite|OCreate)
		if err != nil {
			t.Error(err)
			return
		}
		_, _ = pr.Write(fd, []byte("xyz"))
		_ = pr.Close(fd)
		st, err := pr.Stat("/d/f")
		if err != nil || st.Size != 3 || st.IsDir {
			t.Errorf("stat = %+v, %v", st, err)
		}
		names, err := pr.ReadDir("/d")
		if err != nil || len(names) != 1 || names[0] != "f" {
			t.Errorf("readdir = %v, %v", names, err)
		}
		if err := pr.Unlink("/d"); err == nil {
			t.Error("unlink non-empty dir must fail")
		}
		if err := pr.Unlink("/d/f"); err != nil {
			t.Error(err)
		}
		if err := pr.Unlink("/d"); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
}

func TestSendfile(t *testing.T) {
	eng, s := lx(t, false)
	payload := bytes.Repeat([]byte("tarball!"), 2048)
	s.Spawn("tar", func(pr *Proc) {
		fd, _ := pr.Open("/src", OWrite|OCreate)
		_, _ = pr.Write(fd, payload)
		_ = pr.Close(fd)
		src, _ := pr.Open("/src", ORead)
		dst, _ := pr.Open("/dst", OWrite|OCreate)
		for {
			if _, err := pr.Sendfile(dst, src, 64<<10); err != nil {
				break
			}
		}
		_ = pr.Close(src)
		_ = pr.Close(dst)
		st, err := pr.Stat("/dst")
		if err != nil || st.Size != int64(len(payload)) {
			t.Errorf("dst stat = %+v, %v", st, err)
		}
	})
	eng.Run()
	node, _, err := s.fs.lookup("/dst")
	if err != nil || !bytes.Equal(node.data, payload) {
		t.Fatal("sendfile corrupted data")
	}
}

func TestARMSyscallCheaper(t *testing.T) {
	measureStat := func(p Profile) sim.Time {
		eng := sim.NewEngine()
		s := New(eng, p, false)
		var took sim.Time
		s.Spawn("x", func(pr *Proc) {
			start := pr.P().Now()
			_, _ = pr.Stat("/")
			took = pr.P().Now() - start
		})
		eng.Run()
		return took
	}
	if xt, arm := measureStat(ProfileXtensa), measureStat(ProfileARM); arm >= xt {
		t.Fatalf("ARM stat (%d) should be cheaper than Xtensa (%d)", arm, xt)
	}
}
