package linuxos

import (
	"fmt"
	"sort"
	"strings"
)

// tmpfs is the in-memory filesystem the paper compares m3fs against: a
// node tree with file contents as real bytes, 4 KiB blocks in the page
// cache.
type tmpfs struct {
	root *tnode
}

type tnode struct {
	dir      bool
	data     []byte
	children map[string]*tnode
}

// tmpfsBlock is the tmpfs block size (§5.4: "tmpfs used a block size
// of 4 KiB").
const tmpfsBlock = 4096

func newTmpfs() *tmpfs {
	return &tmpfs{root: &tnode{dir: true, children: map[string]*tnode{}}}
}

func splitPath(path string) []string {
	var out []string
	for _, c := range strings.Split(path, "/") {
		if c != "" && c != "." {
			out = append(out, c)
		}
	}
	return out
}

// lookup resolves a path; depth counts walked components.
func (fs *tmpfs) lookup(path string) (*tnode, int, error) {
	cur := fs.root
	comps := splitPath(path)
	for i, c := range comps {
		if !cur.dir {
			return nil, i, fmt.Errorf("linuxos: %s: not a directory", path)
		}
		next, ok := cur.children[c]
		if !ok {
			return nil, i, fmt.Errorf("linuxos: %s: no such file or directory", path)
		}
		cur = next
	}
	return cur, len(comps), nil
}

func (fs *tmpfs) parent(path string) (*tnode, string, int, error) {
	comps := splitPath(path)
	if len(comps) == 0 {
		return nil, "", 0, fmt.Errorf("linuxos: invalid path %s", path)
	}
	dir, depth, err := fs.lookup(strings.Join(comps[:len(comps)-1], "/"))
	if err != nil {
		return nil, "", depth, err
	}
	if !dir.dir {
		return nil, "", depth, fmt.Errorf("linuxos: not a directory")
	}
	return dir, comps[len(comps)-1], depth, nil
}

func (fs *tmpfs) create(path string) (*tnode, int, error) {
	dir, name, depth, err := fs.parent(path)
	if err != nil {
		return nil, depth, err
	}
	if n, ok := dir.children[name]; ok {
		return n, depth, nil
	}
	n := &tnode{}
	dir.children[name] = n
	return n, depth, nil
}

func (fs *tmpfs) mkdir(path string) (int, error) {
	dir, name, depth, err := fs.parent(path)
	if err != nil {
		return depth, err
	}
	if _, ok := dir.children[name]; ok {
		return depth, fmt.Errorf("linuxos: %s exists", path)
	}
	dir.children[name] = &tnode{dir: true, children: map[string]*tnode{}}
	return depth, nil
}

func (fs *tmpfs) unlink(path string) (int, error) {
	dir, name, depth, err := fs.parent(path)
	if err != nil {
		return depth, err
	}
	n, ok := dir.children[name]
	if !ok {
		return depth, fmt.Errorf("linuxos: %s missing", path)
	}
	if n.dir && len(n.children) > 0 {
		return depth, fmt.Errorf("linuxos: %s not empty", path)
	}
	delete(dir.children, name)
	return depth, nil
}

func (fs *tmpfs) link(oldPath, newPath string) (int, error) {
	n, d1, err := fs.lookup(oldPath)
	if err != nil {
		return d1, err
	}
	if n.dir {
		return d1, fmt.Errorf("linuxos: %s: cannot link directory", oldPath)
	}
	dir, name, d2, err := fs.parent(newPath)
	if err != nil {
		return d1 + d2, err
	}
	if _, exists := dir.children[name]; exists {
		return d1 + d2, fmt.Errorf("linuxos: %s exists", newPath)
	}
	dir.children[name] = n
	return d1 + d2, nil
}

func (fs *tmpfs) rename(oldPath, newPath string) (int, error) {
	oldDir, oldName, d1, err := fs.parent(oldPath)
	if err != nil {
		return d1, err
	}
	n, ok := oldDir.children[oldName]
	if !ok {
		return d1, fmt.Errorf("linuxos: %s missing", oldPath)
	}
	newDir, newName, d2, err := fs.parent(newPath)
	if err != nil {
		return d1 + d2, err
	}
	if _, exists := newDir.children[newName]; exists {
		return d1 + d2, fmt.Errorf("linuxos: %s exists", newPath)
	}
	delete(oldDir.children, oldName)
	newDir.children[newName] = n
	return d1 + d2, nil
}

func (fs *tmpfs) readdir(path string) ([]string, *tnode, error) {
	n, _, err := fs.lookup(path)
	if err != nil {
		return nil, nil, err
	}
	if !n.dir {
		return nil, nil, fmt.Errorf("linuxos: %s not a directory", path)
	}
	names := make([]string, 0, len(n.children))
	for c := range n.children {
		names = append(names, c)
	}
	sort.Strings(names)
	return names, n, nil
}
