// Package linuxos models the paper's comparison system: Linux 3.18 on
// a single simulated core with caches and an MMU. It is a calibrated
// cost model, not a kernel: each POSIX operation charges the cycle
// costs the paper measured on the Cadence Xtensa simulator (and on an
// ARM Cortex-A15 for the cross-check), split into OS overhead and data
// transfers so the evaluation can reproduce the paper's stacked bars.
//
// Two cache variants reproduce the Lx / Lx-$ pair from Figures 3 and
// 5: the warm variant (Lx-$) charges pure software costs; the cold
// variant (Lx) additionally charges a cache-line fill per line of data
// touched, with the line-fill time equal to loading a 32-byte line over
// the DTU, "so loading data from DRAM takes the same time in both
// setups" (§5.1).
package linuxos

import "repro/internal/sim"

// Profile holds the per-architecture cost constants.
type Profile struct {
	Name string

	// SyscallCost is entering+leaving the kernel with state save and
	// restore: 410 cycles on Xtensa, 320 on ARM (§5.2, §5.3).
	SyscallCost sim.Time
	// FDLookupCost covers retrieving the file pointer, security checks,
	// and function prologs/epilogs (~400 cycles, §5.4).
	FDLookupCost sim.Time
	// PageCacheCost covers page-cache get/put per block (~550 cycles,
	// §5.4).
	PageCacheCost sim.Time

	// MemcpyBytesPerCycle is the warm-cache copy bandwidth. Xtensa has
	// no cache-line prefetcher and cannot saturate the memory
	// bandwidth (§5.4); ARM copies faster.
	MemcpyBytesPerCycle float64

	// CacheLineSize and LineFillCost model the cold-cache variant: a
	// 32-byte line costs line/8 cycles of DTU-equivalent transfer plus
	// the DRAM access latency.
	CacheLineSize int
	LineFillCost  sim.Time

	// ZeroFillPerByte models Linux zeroing each block before handing it
	// to a writing application (§5.4), in cycles per byte.
	ZeroFillPerByte float64

	// ContextSwitchCost is the direct cost of switching processes.
	ContextSwitchCost sim.Time

	// ForkCost and ExecBaseCost cover process creation; exec
	// additionally copies the executable.
	ForkCost     sim.Time
	ExecBaseCost sim.Time

	// PathCompCost is the dentry-cache lookup per path component;
	// StatCost the remaining stat work. stat is "well optimized on
	// Linux" (§5.6).
	PathCompCost sim.Time
	StatCost     sim.Time

	// PipeBufSize is the kernel pipe buffer (64 KiB on Linux).
	PipeBufSize int
}

// ProfileXtensa matches the paper's primary evaluation platform.
var ProfileXtensa = Profile{
	Name:                "xtensa",
	SyscallCost:         410,
	FDLookupCost:        400,
	PageCacheCost:       550,
	MemcpyBytesPerCycle: 1.0,
	CacheLineSize:       32,
	LineFillCost:        20, // 32/8 transfer + DRAM latency
	ZeroFillPerByte:     0.5,
	ContextSwitchCost:   1200,
	ForkCost:            60000,
	ExecBaseCost:        40000,
	PathCompCost:        60,
	StatCost:            150,
	PipeBufSize:         64 << 10,
}

// ProfileARM matches the ARM Cortex-A15 cross-check (§5.2): a cheaper
// syscall (320 vs 410 cycles) and a core with a prefetcher that copies
// faster, but — running at a higher clock — slightly more cycles of
// OS overhead around block allocation, so that creating a 2 MiB file
// has a bit more overhead on ARM than on Xtensa (2.4M vs 2.2M cycles
// in the paper) while copying costs about the same on both.
var ProfileARM = Profile{
	Name:                "arm",
	SyscallCost:         320,
	FDLookupCost:        400,
	PageCacheCost:       550,
	MemcpyBytesPerCycle: 1.45,
	CacheLineSize:       32,
	LineFillCost:        20,
	ZeroFillPerByte:     0.6,
	ContextSwitchCost:   1000,
	ForkCost:            55000,
	ExecBaseCost:        38000,
	PathCompCost:        55,
	StatCost:            140,
	PipeBufSize:         64 << 10,
}
