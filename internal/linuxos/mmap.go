package linuxos

import (
	"errors"

	"repro/internal/sim"
)

// Mmap-based file copy (§5.4): the paper compared copying a file via
// mmap on Linux "but do not show it here, because of Linux's bad
// performance due to cache thrashing between the page fault handling
// of the kernel and the memcpy of the application". This file models
// that path so the exclusion can be reproduced: every touched page
// costs a fault (mode switch + page-table work), and the interleaving
// of kernel fault handling with user memcpy evicts each other's
// working set, adding a per-page thrash penalty on top of the plain
// copy cost.

// Page-fault cost components.
const (
	// mmapFaultCost is the mode switch plus page-table and vma work
	// per minor fault.
	mmapFaultCost sim.Time = 900
	mmapPageSize           = 4096
)

// mmapThrashCost is the extra cache-refill work around every fault:
// the kernel's fault path and the application's memcpy evict each
// other's working set, so both re-fill roughly a page worth of lines.
func mmapThrashCost(p *Profile) sim.Time {
	lines := mmapPageSize / p.CacheLineSize
	return 2 * sim.Time(lines) * p.LineFillCost
}

// Mmap maps the file at path and returns a handle. The mapping itself
// is one syscall; costs accrue per page on first touch.
func (pr *Proc) Mmap(path string) (*Mapping, error) {
	prof := &pr.sys.Prof
	node, depth, err := pr.sys.fs.lookup(path)
	pr.charge(KindOS, prof.SyscallCost+prof.FDLookupCost+prof.PathCompCost*sim.Time(depth))
	if err != nil {
		return nil, err
	}
	if node.dir {
		return nil, errors.New("linuxos: mmap on directory")
	}
	return &Mapping{pr: pr, node: node}, nil
}

// Mapping is a memory-mapped file.
type Mapping struct {
	pr     *Proc
	node   *tnode
	faults int
}

// Len returns the mapped length.
func (m *Mapping) Len() int { return len(m.node.data) }

// Faults returns the number of page faults taken so far.
func (m *Mapping) Faults() int { return m.faults }

// CopyTo copies the whole mapping into the (open, written-through)
// destination mapping, modelling the user-space memcpy loop with
// demand paging on both sides: a fault per source page, a fault per
// fresh destination page (plus its zero-fill), the copy itself, and
// the kernel/user cache thrashing around every fault.
func (m *Mapping) CopyTo(dst *Mapping) (int, error) {
	pr := m.pr
	prof := &pr.sys.Prof
	n := len(m.node.data)
	if grow := n - len(dst.node.data); grow > 0 {
		dst.node.data = append(dst.node.data, make([]byte, grow)...)
	}
	pages := (n + mmapPageSize - 1) / mmapPageSize
	for p := 0; p < pages; p++ {
		// Source fault + destination fault, each with thrash.
		pr.charge(KindOS, 2*mmapFaultCost)
		pr.charge(KindXfer, 2*mmapThrashCost(prof))
		m.faults++
		dst.faults++
		// Zero-fill of the fresh destination page, then the copy.
		pr.charge(KindXfer, sim.Time(float64(mmapPageSize)*prof.ZeroFillPerByte))
		lo := p * mmapPageSize
		hi := lo + mmapPageSize
		if hi > n {
			hi = n
		}
		copy(dst.node.data[lo:hi], m.node.data[lo:hi])
		pr.charge(KindXfer, pr.sys.copyCost(hi-lo))
	}
	return n, nil
}

// Unmap releases the mapping (one syscall).
func (m *Mapping) Unmap() {
	m.pr.charge(KindOS, m.pr.sys.Prof.SyscallCost)
}
