package linuxos

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func TestMmapCopyCorrect(t *testing.T) {
	eng, s := lx(t, false)
	payload := bytes.Repeat([]byte("mapped"), 3000)
	s.Spawn("mmap", func(pr *Proc) {
		fd, _ := pr.Open("/src", OWrite|OCreate)
		_, _ = pr.Write(fd, payload)
		_ = pr.Close(fd)
		fd, _ = pr.Open("/dst", OWrite|OCreate)
		_ = pr.Close(fd)
		src, err := pr.Mmap("/src")
		if err != nil {
			t.Error(err)
			return
		}
		dst, err := pr.Mmap("/dst")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := src.CopyTo(dst); err != nil {
			t.Error(err)
		}
		if src.Faults() == 0 {
			t.Error("no page faults recorded")
		}
		src.Unmap()
		dst.Unmap()
	})
	eng.Run()
	node, _, err := s.fs.lookup("/dst")
	if err != nil || !bytes.Equal(node.data, payload) {
		t.Fatal("mmap copy corrupted data")
	}
}

// TestMmapCopySlowerThanReadWrite reproduces why the paper excluded
// the mmap numbers: cache thrashing between kernel fault handling and
// the application's memcpy makes it clearly worse than read/write.
func TestMmapCopySlowerThanReadWrite(t *testing.T) {
	const size = 512 << 10
	copyVia := func(mmap bool) sim.Time {
		eng := sim.NewEngine()
		s := New(eng, ProfileXtensa, false)
		var took sim.Time
		s.Spawn("copy", func(pr *Proc) {
			fd, _ := pr.Open("/src", OWrite|OCreate)
			_, _ = pr.Write(fd, make([]byte, size))
			_ = pr.Close(fd)
			fd, _ = pr.Open("/dst", OWrite|OCreate)
			_ = pr.Close(fd)
			start := pr.P().Now()
			if mmap {
				src, _ := pr.Mmap("/src")
				dst, _ := pr.Mmap("/dst")
				_, _ = src.CopyTo(dst)
				src.Unmap()
				dst.Unmap()
			} else {
				src, _ := pr.Open("/src", ORead)
				dst, _ := pr.Open("/dst", OWrite)
				buf := make([]byte, 4096)
				for {
					n, err := pr.Read(src, buf)
					if n > 0 {
						_, _ = pr.Write(dst, buf[:n])
					}
					if err != nil {
						break
					}
				}
				_ = pr.Close(src)
				_ = pr.Close(dst)
			}
			took = pr.P().Now() - start
		})
		eng.Run()
		return took
	}
	rw, mm := copyVia(false), copyVia(true)
	if mm <= rw {
		t.Fatalf("mmap copy (%d) must be slower than read/write (%d), as in §5.4", mm, rw)
	}
}

func TestMmapErrors(t *testing.T) {
	eng, s := lx(t, false)
	s.Spawn("err", func(pr *Proc) {
		if _, err := pr.Mmap("/missing"); err == nil {
			t.Error("mmap of missing file must fail")
		}
		_ = pr.Mkdir("/d")
		if _, err := pr.Mmap("/d"); err == nil {
			t.Error("mmap of directory must fail")
		}
	})
	eng.Run()
	_ = s
}
