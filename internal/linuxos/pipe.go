package linuxos

import (
	"io"

	"repro/internal/sim"
)

// pipeBuf is a kernel pipe buffer: reader and writer copy through it
// with syscalls and block when it runs empty/full, forcing context
// switches on the shared core — the cost M3 avoids by placing reader
// and writer on separate PEs.
type pipeBuf struct {
	sys         *System
	data        []byte
	max         int
	readClosed  bool
	writeClosed bool
	changed     *sim.Signal
}

// Pipe creates a pipe and returns (readFD, writeFD).
func (pr *Proc) Pipe() (int, int) {
	pr.charge(KindOS, pr.sys.Prof.SyscallCost)
	pb := &pipeBuf{sys: pr.sys, max: pr.sys.Prof.PipeBufSize, changed: sim.NewSignal(pr.sys.Eng)}
	r := &fdesc{pipe: pb, read: true, refs: 1}
	w := &fdesc{pipe: pb, refs: 1}
	rfd, wfd := pr.nextFD, pr.nextFD+1
	pr.nextFD += 2
	pr.fds[rfd] = r
	pr.fds[wfd] = w
	return rfd, wfd
}

func (pb *pipeBuf) closeEnd(read bool) {
	if read {
		pb.readClosed = true
	} else {
		pb.writeClosed = true
	}
	pb.changed.Broadcast()
}

func (pr *Proc) pipeRead(f *fdesc, buf []byte) (int, error) {
	prof := &pr.sys.Prof
	pb := f.pipe
	pr.charge(KindOS, prof.SyscallCost+prof.FDLookupCost)
	for len(pb.data) == 0 {
		if pb.writeClosed {
			return 0, io.EOF
		}
		// Block outside the CPU: the writer runs meanwhile.
		pb.changed.Wait(pr.p)
	}
	n := copy(buf, pb.data)
	pb.data = pb.data[n:]
	pr.charge(KindXfer, pr.sys.copyCost(n))
	pb.changed.Broadcast()
	return n, nil
}

func (pr *Proc) pipeWrite(f *fdesc, buf []byte) (int, error) {
	prof := &pr.sys.Prof
	pb := f.pipe
	pr.charge(KindOS, prof.SyscallCost+prof.FDLookupCost)
	total := 0
	for len(buf) > 0 {
		for len(pb.data) >= pb.max {
			if pb.readClosed {
				return total, io.ErrClosedPipe
			}
			pb.changed.Wait(pr.p)
		}
		n := pb.max - len(pb.data)
		if n > len(buf) {
			n = len(buf)
		}
		pb.data = append(pb.data, buf[:n]...)
		pr.charge(KindXfer, pr.sys.copyCost(n))
		pb.changed.Broadcast()
		buf = buf[n:]
		total += n
	}
	return total, nil
}
