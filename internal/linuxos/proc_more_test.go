package linuxos

import (
	"io"
	"testing"

	"repro/internal/sim"
)

func TestSeekWhenceVariants(t *testing.T) {
	eng, s := lx(t, false)
	s.Spawn("seek", func(pr *Proc) {
		fd, _ := pr.Open("/f", OWrite|OCreate)
		_, _ = pr.Write(fd, make([]byte, 100))
		if pos, _ := pr.Seek(fd, 10, io.SeekStart); pos != 10 {
			t.Errorf("SeekStart = %d", pos)
		}
		if pos, _ := pr.Seek(fd, 5, io.SeekCurrent); pos != 15 {
			t.Errorf("SeekCurrent = %d", pos)
		}
		if pos, _ := pr.Seek(fd, -20, io.SeekEnd); pos != 80 {
			t.Errorf("SeekEnd = %d", pos)
		}
		if pos, _ := pr.Seek(fd, -500, io.SeekStart); pos != 0 {
			t.Errorf("negative clamped = %d", pos)
		}
		_ = pr.Close(fd)
	})
	eng.Run()
}

func TestAppendFlag(t *testing.T) {
	eng, s := lx(t, false)
	s.Spawn("append", func(pr *Proc) {
		fd, _ := pr.Open("/log", OWrite|OCreate)
		_, _ = pr.Write(fd, []byte("one"))
		_ = pr.Close(fd)
		fd, _ = pr.Open("/log", OWrite|OAppend)
		_, _ = pr.Write(fd, []byte("two"))
		_ = pr.Close(fd)
		st, err := pr.Stat("/log")
		if err != nil || st.Size != 6 {
			t.Errorf("stat = %+v, %v", st, err)
		}
	})
	eng.Run()
	node, _, _ := s.fs.lookup("/log")
	if string(node.data) != "onetwo" {
		t.Fatalf("content = %q", node.data)
	}
}

func TestExecCharges(t *testing.T) {
	eng, s := lx(t, false)
	var took sim.Time
	s.Spawn("exec", func(pr *Proc) {
		start := pr.P().Now()
		pr.Exec(64 << 10)
		took = pr.P().Now() - start
	})
	eng.Run()
	min := ProfileXtensa.SyscallCost + ProfileXtensa.ExecBaseCost
	if took < min {
		t.Fatalf("exec took %d, want >= %d", took, min)
	}
	if s.Stats.Xfer == 0 {
		t.Fatal("exec image copy not charged as transfer")
	}
}

func TestForkSharesDescriptors(t *testing.T) {
	eng, s := lx(t, false)
	var childRead []byte
	s.Spawn("parent", func(pr *Proc) {
		fd, _ := pr.Open("/shared", OWrite|OCreate)
		_, _ = pr.Write(fd, []byte("0123456789"))
		_ = pr.Close(fd)
		fd, _ = pr.Open("/shared", ORead)
		// Parent reads 4 bytes; the child inherits the offset.
		buf := make([]byte, 4)
		_, _ = pr.Read(fd, buf)
		child := pr.Fork("child", func(ch *Proc) {
			b := make([]byte, 6)
			n, _ := ch.Read(fd, b)
			childRead = b[:n]
		})
		pr.Wait(child)
		_ = pr.Close(fd)
	})
	eng.Run()
	if string(childRead) != "456789" {
		t.Fatalf("child read %q, want shared offset semantics", childRead)
	}
}

func TestBadFDErrors(t *testing.T) {
	eng, s := lx(t, false)
	s.Spawn("bad", func(pr *Proc) {
		if _, err := pr.Read(42, make([]byte, 4)); err == nil {
			t.Error("read on bad fd must fail")
		}
		if _, err := pr.Write(42, []byte("x")); err == nil {
			t.Error("write on bad fd must fail")
		}
		if err := pr.Close(42); err == nil {
			t.Error("close on bad fd must fail")
		}
		if _, err := pr.Open("/missing", ORead); err == nil {
			t.Error("open missing without O_CREAT must fail")
		}
	})
	eng.Run()
}

func TestReadDirChargesPerChunk(t *testing.T) {
	eng, s := lx(t, false)
	var small, large sim.Time
	s.Spawn("dirs", func(pr *Proc) {
		_ = pr.Mkdir("/d")
		for i := 0; i < 20; i++ {
			fd, _ := pr.Open("/d/f"+string(rune('a'+i)), OWrite|OCreate)
			_ = pr.Close(fd)
		}
		start := pr.P().Now()
		if _, err := pr.ReadDir("/d"); err != nil {
			t.Error(err)
		}
		large = pr.P().Now() - start
		_ = pr.Mkdir("/e")
		start = pr.P().Now()
		if _, err := pr.ReadDir("/e"); err != nil {
			t.Error(err)
		}
		small = pr.P().Now() - start
	})
	eng.Run()
	if large <= small {
		t.Fatalf("20-entry readdir (%d) should cost more than empty (%d)", large, small)
	}
}

func TestColdCacheAppliesToPipes(t *testing.T) {
	run := func(cold bool) sim.Time {
		eng := sim.NewEngine()
		s := New(eng, ProfileXtensa, cold)
		var took sim.Time
		s.Spawn("p", func(pr *Proc) {
			rfd, wfd := pr.Pipe()
			start := pr.P().Now()
			buf := make([]byte, 16<<10)
			_, _ = pr.Write(wfd, buf)
			_, _ = pr.Read(rfd, buf)
			took = pr.P().Now() - start
		})
		eng.Run()
		return took
	}
	if cold, warm := run(true), run(false); cold <= warm {
		t.Fatalf("cold pipe (%d) must cost more than warm (%d)", cold, warm)
	}
}

func TestLinuxLinkRename(t *testing.T) {
	eng, s := lx(t, false)
	s.Spawn("links", func(pr *Proc) {
		fd, _ := pr.Open("/orig", OWrite|OCreate)
		_, _ = pr.Write(fd, []byte("data"))
		_ = pr.Close(fd)
		if err := pr.Link("/orig", "/alias"); err != nil {
			t.Error(err)
		}
		if err := pr.Unlink("/orig"); err != nil {
			t.Error(err)
		}
		st, err := pr.Stat("/alias")
		if err != nil || st.Size != 4 {
			t.Errorf("alias stat = %+v, %v", st, err)
		}
		if err := pr.Rename("/alias", "/final"); err != nil {
			t.Error(err)
		}
		if _, err := pr.Stat("/alias"); err == nil {
			t.Error("old name resolves after rename")
		}
		if _, err := pr.Stat("/final"); err != nil {
			t.Error(err)
		}
		_ = pr.Mkdir("/d")
		if err := pr.Link("/d", "/d2"); err == nil {
			t.Error("directory link must fail")
		}
	})
	eng.Run()
	_ = s
}

func TestIsDirEntry(t *testing.T) {
	eng, s := lx(t, false)
	s.Spawn("d", func(pr *Proc) {
		_ = pr.Mkdir("/dir")
		fd, _ := pr.Open("/dir/file", OWrite|OCreate)
		_ = pr.Close(fd)
		if !pr.IsDirEntry("", "dir") {
			t.Error("dir not detected")
		}
		if pr.IsDirEntry("/dir", "file") {
			t.Error("file misdetected as dir")
		}
		if pr.IsDirEntry("/dir", "missing") {
			t.Error("missing entry misdetected")
		}
	})
	eng.Run()
	_ = s
}
