package linuxos

import (
	"fmt"

	"repro/internal/sim"
)

// CostKind classifies charged cycles for the evaluation's stacked bars.
type CostKind int

// Cost categories.
const (
	// KindOS is operating-system overhead (syscall entry, fd lookup,
	// page cache, scheduling).
	KindOS CostKind = iota
	// KindXfer is data movement (memcpy, zero-fill, cache-line fills).
	KindXfer
	// KindApp is application compute.
	KindApp
)

// Stats accumulates cycles per category.
type Stats struct {
	OS   sim.Time
	Xfer sim.Time
	App  sim.Time
}

// Total returns the sum of all categories.
func (s Stats) Total() sim.Time { return s.OS + s.Xfer + s.App }

// System is one simulated Linux machine: a single time-shared core, a
// tmpfs, and pipes.
type System struct {
	Eng  *sim.Engine
	Prof Profile
	// ColdCache selects the Lx variant (cache misses on touched data);
	// false is Lx-$ (§5.1).
	ColdCache bool

	cpu      *sim.Resource
	lastProc *Proc
	fs       *tmpfs

	Stats Stats
}

// New creates a Linux system on the engine.
func New(eng *sim.Engine, prof Profile, coldCache bool) *System {
	return &System{
		Eng:       eng,
		Prof:      prof,
		ColdCache: coldCache,
		cpu:       sim.NewResource(eng, 1),
		fs:        newTmpfs(),
	}
}

// Proc is one Linux process.
type Proc struct {
	sys    *System
	p      *sim.Process
	name   string
	fds    map[int]*fdesc
	nextFD int
}

// Spawn starts a process running main. The initial process of a
// benchmark is created this way; children come from Fork.
func (s *System) Spawn(name string, main func(*Proc)) *sim.Process {
	pr := &Proc{sys: s, name: name, fds: make(map[int]*fdesc), nextFD: 3}
	return s.Eng.Spawn("lx/"+name, func(p *sim.Process) {
		pr.p = p
		main(pr)
	})
}

// P returns the underlying simulation process.
func (pr *Proc) P() *sim.Process { return pr.p }

// charge runs cost cycles on the CPU, accounting them to kind and
// adding a context-switch penalty when the CPU changes hands.
func (pr *Proc) charge(kind CostKind, cost sim.Time) {
	s := pr.sys
	s.cpu.Acquire(pr.p, 1)
	var extra sim.Time
	if s.lastProc != pr && s.lastProc != nil {
		extra = s.Prof.ContextSwitchCost
		s.Stats.OS += extra
	}
	s.lastProc = pr
	switch kind {
	case KindOS:
		s.Stats.OS += cost
	case KindXfer:
		s.Stats.Xfer += cost
	case KindApp:
		s.Stats.App += cost
	}
	pr.p.Sleep(cost + extra)
	s.cpu.Release(1)
}

// Compute models application work.
func (pr *Proc) Compute(cycles sim.Time) { pr.charge(KindApp, cycles) }

// copyCost returns the cycles to copy n bytes, including cache-line
// fills in the cold variant.
func (s *System) copyCost(n int) sim.Time {
	c := sim.Time(float64(n) / s.Prof.MemcpyBytesPerCycle)
	if s.ColdCache {
		lines := (n + s.Prof.CacheLineSize - 1) / s.Prof.CacheLineSize
		c += sim.Time(lines) * s.Prof.LineFillCost
	}
	return c
}

// Fork creates a child process running main, charging the fork cost.
// It returns the child's simulation process for Wait.
func (pr *Proc) Fork(name string, main func(*Proc)) *sim.Process {
	pr.charge(KindOS, pr.sys.Prof.SyscallCost+pr.sys.Prof.ForkCost)
	child := &Proc{sys: pr.sys, name: name, fds: make(map[int]*fdesc), nextFD: pr.nextFD}
	// Children inherit the parent's file descriptors (shared offsets,
	// like after fork).
	for fd, f := range pr.fds {
		f.refs++
		child.fds[fd] = f
	}
	return pr.sys.Eng.Spawn("lx/"+name, func(p *sim.Process) {
		child.p = p
		main(child)
	})
}

// Exec charges the cost of loading a new executable of the given size.
func (pr *Proc) Exec(size int) {
	pr.charge(KindOS, pr.sys.Prof.SyscallCost+pr.sys.Prof.ExecBaseCost)
	pr.charge(KindXfer, pr.sys.copyCost(size))
}

// Wait joins another process (wait4).
func (pr *Proc) Wait(child *sim.Process) {
	pr.charge(KindOS, pr.sys.Prof.SyscallCost)
	pr.p.Join(child)
}

func (pr *Proc) String() string { return fmt.Sprintf("lxproc(%s)", pr.name) }
