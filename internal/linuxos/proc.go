package linuxos

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// OpenFlags mirror the POSIX open flags the workloads need.
type OpenFlags uint32

// Open flags.
const (
	ORead OpenFlags = 1 << iota
	OWrite
	OCreate
	OTrunc
	OAppend
)

// StatInfo is the subset of struct stat the workloads use.
type StatInfo struct {
	Size  int64
	IsDir bool
}

// fdesc is an open description (shared across fork, like the kernel's
// struct file).
type fdesc struct {
	node  *tnode
	pipe  *pipeBuf
	read  bool // pipe read end
	pos   int64
	flags OpenFlags
	refs  int
}

// Open opens path, charging syscall + path resolution costs.
func (pr *Proc) Open(path string, flags OpenFlags) (int, error) {
	prof := &pr.sys.Prof
	node, depth, err := pr.sys.fs.lookup(path)
	if err != nil && flags&OCreate != 0 {
		node, depth, err = pr.sys.fs.create(path)
	}
	pr.charge(KindOS, prof.SyscallCost+prof.FDLookupCost+prof.PathCompCost*sim.Time(depth+1))
	if err != nil {
		return -1, err
	}
	if flags&OTrunc != 0 && !node.dir {
		node.data = node.data[:0]
	}
	f := &fdesc{node: node, flags: flags, refs: 1}
	if flags&OAppend != 0 {
		f.pos = int64(len(node.data))
	}
	fd := pr.nextFD
	pr.nextFD++
	pr.fds[fd] = f
	return fd, nil
}

func (pr *Proc) fd(fd int) (*fdesc, error) {
	f, ok := pr.fds[fd]
	if !ok {
		return nil, fmt.Errorf("linuxos: bad fd %d", fd)
	}
	return f, nil
}

// Read reads up to len(buf) bytes: one syscall, fd lookup, page-cache
// operations per touched block, and the copy to user space.
func (pr *Proc) Read(fd int, buf []byte) (int, error) {
	prof := &pr.sys.Prof
	f, err := pr.fd(fd)
	if err != nil {
		return 0, err
	}
	if f.pipe != nil {
		return pr.pipeRead(f, buf)
	}
	pr.charge(KindOS, prof.SyscallCost+prof.FDLookupCost)
	if f.node == nil || f.node.dir {
		return 0, errors.New("linuxos: read on directory")
	}
	if f.pos >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(buf, f.node.data[f.pos:])
	blocks := (n + tmpfsBlock - 1) / tmpfsBlock
	pr.charge(KindOS, prof.PageCacheCost*sim.Time(blocks))
	pr.charge(KindXfer, pr.sys.copyCost(n))
	f.pos += int64(n)
	return n, nil
}

// Write appends/stores bytes: syscall, fd lookup, page-cache work, the
// zero-fill of freshly allocated blocks, and the copy from user space.
func (pr *Proc) Write(fd int, buf []byte) (int, error) {
	prof := &pr.sys.Prof
	f, err := pr.fd(fd)
	if err != nil {
		return 0, err
	}
	if f.pipe != nil {
		return pr.pipeWrite(f, buf)
	}
	pr.charge(KindOS, prof.SyscallCost+prof.FDLookupCost)
	if f.node == nil || f.node.dir {
		return 0, errors.New("linuxos: write on directory")
	}
	if f.flags&OWrite == 0 {
		return 0, errors.New("linuxos: fd not writable")
	}
	end := f.pos + int64(len(buf))
	grow := end - int64(len(f.node.data))
	if grow > 0 {
		f.node.data = append(f.node.data, make([]byte, grow)...)
		// Linux zeroes each freshly handed-out block (§5.4).
		pr.charge(KindXfer, sim.Time(float64(grow)*prof.ZeroFillPerByte))
	}
	copy(f.node.data[f.pos:], buf)
	blocks := (len(buf) + tmpfsBlock - 1) / tmpfsBlock
	pr.charge(KindOS, prof.PageCacheCost*sim.Time(blocks))
	pr.charge(KindXfer, pr.sys.copyCost(len(buf)))
	f.pos = end
	return len(buf), nil
}

// Sendfile copies n bytes from src to dst inside the kernel (tar and
// untar use sendfile, §5.6: "Linux does not suffer from many system
// calls in this case").
func (pr *Proc) Sendfile(dst, src int, n int) (int, error) {
	prof := &pr.sys.Prof
	fs, err := pr.fd(src)
	if err != nil {
		return 0, err
	}
	fd, err := pr.fd(dst)
	if err != nil {
		return 0, err
	}
	pr.charge(KindOS, prof.SyscallCost+2*prof.FDLookupCost)
	if fs.node == nil || fd.node == nil {
		return 0, errors.New("linuxos: sendfile needs regular files")
	}
	avail := int64(len(fs.node.data)) - fs.pos
	if int64(n) > avail {
		n = int(avail)
	}
	if n <= 0 {
		return 0, io.EOF
	}
	end := fd.pos + int64(n)
	if grow := end - int64(len(fd.node.data)); grow > 0 {
		fd.node.data = append(fd.node.data, make([]byte, grow)...)
		pr.charge(KindXfer, sim.Time(float64(grow)*prof.ZeroFillPerByte))
	}
	copy(fd.node.data[fd.pos:], fs.node.data[fs.pos:fs.pos+int64(n)])
	blocks := (n + tmpfsBlock - 1) / tmpfsBlock
	pr.charge(KindOS, prof.PageCacheCost*sim.Time(2*blocks))
	// One in-kernel copy instead of two user-space crossings.
	pr.charge(KindXfer, pr.sys.copyCost(n))
	fs.pos += int64(n)
	fd.pos = end
	return n, nil
}

// Seek adjusts the file offset.
func (pr *Proc) Seek(fd int, off int64, whence int) (int64, error) {
	f, err := pr.fd(fd)
	if err != nil {
		return 0, err
	}
	pr.charge(KindOS, pr.sys.Prof.SyscallCost)
	switch whence {
	case io.SeekStart:
		f.pos = off
	case io.SeekCurrent:
		f.pos += off
	case io.SeekEnd:
		f.pos = int64(len(f.node.data)) + off
	}
	if f.pos < 0 {
		f.pos = 0
	}
	return f.pos, nil
}

// Close drops the descriptor.
func (pr *Proc) Close(fd int) error {
	f, err := pr.fd(fd)
	if err != nil {
		return err
	}
	pr.charge(KindOS, pr.sys.Prof.SyscallCost)
	delete(pr.fds, fd)
	f.refs--
	if f.pipe != nil && f.refs == 0 {
		f.pipe.closeEnd(f.read)
	}
	return nil
}

// Stat resolves path and fills in metadata; well optimized on Linux
// (§5.6).
func (pr *Proc) Stat(path string) (StatInfo, error) {
	prof := &pr.sys.Prof
	node, depth, err := pr.sys.fs.lookup(path)
	pr.charge(KindOS, prof.SyscallCost+prof.StatCost+prof.PathCompCost*sim.Time(depth))
	if err != nil {
		return StatInfo{}, err
	}
	return StatInfo{Size: int64(len(node.data)), IsDir: node.dir}, nil
}

// Mkdir creates a directory.
func (pr *Proc) Mkdir(path string) error {
	prof := &pr.sys.Prof
	depth, err := pr.sys.fs.mkdir(path)
	pr.charge(KindOS, prof.SyscallCost+prof.StatCost+prof.PathCompCost*sim.Time(depth+1))
	return err
}

// Unlink removes a file or empty directory.
func (pr *Proc) Unlink(path string) error {
	prof := &pr.sys.Prof
	depth, err := pr.sys.fs.unlink(path)
	pr.charge(KindOS, prof.SyscallCost+prof.StatCost+prof.PathCompCost*sim.Time(depth+1))
	return err
}

// Link creates a hard link (both names share the inode).
func (pr *Proc) Link(oldPath, newPath string) error {
	prof := &pr.sys.Prof
	depth, err := pr.sys.fs.link(oldPath, newPath)
	pr.charge(KindOS, prof.SyscallCost+prof.StatCost+prof.PathCompCost*sim.Time(depth+1))
	return err
}

// Rename moves a directory entry.
func (pr *Proc) Rename(oldPath, newPath string) error {
	prof := &pr.sys.Prof
	depth, err := pr.sys.fs.rename(oldPath, newPath)
	pr.charge(KindOS, prof.SyscallCost+prof.StatCost+prof.PathCompCost*sim.Time(depth+1))
	return err
}

// ReadDir returns sorted entry names (getdents).
func (pr *Proc) ReadDir(path string) ([]string, error) {
	prof := &pr.sys.Prof
	names, _, err := pr.sys.fs.readdir(path)
	calls := len(names)/8 + 1 // one getdents per chunk of entries
	pr.charge(KindOS, prof.SyscallCost*sim.Time(calls)+prof.FDLookupCost)
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// IsDirEntry reports whether path/name is a directory (stat helper for
// find).
func (pr *Proc) IsDirEntry(dir, name string) bool {
	st, err := pr.Stat(dir + "/" + name)
	return err == nil && st.IsDir
}
