// Package obs is the structured observability layer: typed,
// cycle-stamped events with causal span identifiers, deterministic
// fixed-bucket latency histograms, and a bounded per-PE flight
// recorder. It replaces the free-form string tracer for the hot
// instrumentation paths (DTU, NoC, kernel syscalls) so a single
// request's full path — app PE → NoC hops → kernel/service → reply —
// reconstructs as nested spans (see docs/OBSERVABILITY.md).
//
// Determinism contract: events carry only simulated time and values
// derived from the simulation, so identical (configuration, seed)
// runs produce byte-identical event streams. With no Tracer installed
// (or a disabled one), instrumented components must not schedule a
// single extra engine event; call sites therefore guard every Emit
// and histogram update with On() — the structured analogue of the
// legacy Tracing() convention, enforced by m3vet's obsguard rule.
package obs

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sim"
)

// SpanID is a causal trace identifier. It is allocated at the root of
// a request (a syscall, a service call) and threaded through DTU
// message headers and NoC packets, so every event the request causes
// carries the same id. Zero means "no span".
type SpanID uint64

// Layer names the architectural layer an event originates from.
type Layer uint8

// Layers, ordered from software down to the wire.
const (
	LApp Layer = iota
	LKernel
	LService
	LDTU
	LNoC
	numLayers
)

var layerNames = [numLayers]string{"app", "kernel", "service", "dtu", "noc"}

func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return fmt.Sprintf("layer%d", uint8(l))
}

// Kind is the typed event kind. Kinds come in start/end pairs where
// the pair brackets a span interval; the rest are instants.
type Kind uint8

// Event kinds. The Arg fields are kind-specific (documented per kind).
const (
	EvNone Kind = iota

	// EvSyscallStart/End bracket one syscall round-trip as seen by the
	// application (libm3 marshal to reply unmarshal).
	// Arg0 = syscall opcode. On End, Arg1 = 1 if the send failed.
	EvSyscallStart
	EvSyscallEnd

	// EvKSyscallStart/End bracket the kernel-side handling of one
	// syscall. Arg0 = opcode (Start) / 0 (End), Arg1 = calling VPE id.
	EvKSyscallStart
	EvKSyscallEnd

	// EvSvcCallStart/End bracket one kernel→service control call.
	// Arg0 = the kernel's service send endpoint, Arg1 = op id.
	EvSvcCallStart
	EvSvcCallEnd

	// EvSvcReq marks a service handling one incoming request.
	// Arg0 = service protocol opcode, Arg1 = session ident (0 = ctrl).
	EvSvcReq

	// EvMsgSend marks a DTU message leaving a send endpoint.
	// Arg0 = local endpoint, Arg1 = destination node, Arg2 = bytes.
	EvMsgSend
	// EvReplySend marks a DTU reply leaving (the matching EvMsgRecv at
	// the original sender closes the flight interval).
	// Arg0 = receive endpoint replied on, Arg1 = destination node,
	// Arg2 = bytes.
	EvReplySend
	// EvMsgRecv marks a message landing in a receive ringbuffer.
	// Arg0 = endpoint, Arg1 = bytes, Arg2 = label.
	EvMsgRecv

	// EvXferStart/End bracket one RDMA operation issued by this DTU.
	// Arg0 = 1 for read, 2 for write; Arg1 = bytes.
	EvXferStart
	EvXferEnd

	// EvPktInject/Deliver bracket the NoC flight of one span-carrying
	// packet. Arg0 = peer node, Arg1 = wire bytes.
	EvPktInject
	EvPktDeliver
	// EvPktDrop/EvPktCorrupt are fault verdicts at one hop.
	// Arg0 = destination node, Arg1 = reliability seq,
	// Arg2 = from<<32|to link.
	EvPktDrop
	EvPktCorrupt

	// EvPoisoned marks a corrupted packet discarded at the receiving
	// DTU. Arg0 = source node, Arg1 = seq.
	EvPoisoned
	// EvRetransmit marks one reliability-layer retransmission.
	// Arg0 = seq, Arg1 = destination node, Arg2 = attempt.
	EvRetransmit
	// EvXmitAbort marks a transfer abandoned after the retry budget.
	// Arg0 = seq, Arg1 = destination node, Arg2 = attempts.
	EvXmitAbort
	// EvOpTimeout marks one remote-operation timeout.
	// Arg0 = op id, Arg1 = attempt.
	EvOpTimeout

	// EvConfig marks a remote endpoint configuration taking effect.
	// Arg0 = endpoint, Arg1 = configuring node.
	EvConfig
	// EvReplyDrop marks a kernel syscall reply abandoned after the DTU
	// retry budget. Arg0 = target VPE id.
	EvReplyDrop
	// EvCrash marks a PE core crash (fault injection).
	EvCrash

	// Overload-control kinds (docs/OVERLOAD.md), emitted only when the
	// subsystem is armed.

	// EvDeadlineDrop marks a request dropped at the receiving DTU
	// because its propagated deadline had already expired in flight.
	// Arg0 = endpoint, Arg1 = sender node, Arg2 = cycles overdue.
	EvDeadlineDrop
	// EvAdmitRefuse marks a request refused by the receiving DTU's
	// admission watermark instead of being queued.
	// Arg0 = endpoint, Arg1 = sender node, Arg2 = occupied slots.
	EvAdmitRefuse
	// EvShed marks a service call rejected by the kernel's shed
	// controller before any work was done.
	// Arg0 = service PE, Arg1 = queue depth, Arg2 = priority class.
	EvShed
	// EvBreaker marks a circuit-breaker trip for a service.
	// Arg0 = service PE, Arg1 = total opens.
	EvBreaker

	// EvCreditStall/EvCreditOK bracket one credit-exhaustion wait at a
	// send site: the sender found the endpoint out of credits and
	// blocked until a reply returned one (or the deadline expired).
	// Arg0 = endpoint. On EvCreditOK, Arg2 = 1 if the wait ended by
	// deadline instead of a credit.
	EvCreditStall
	EvCreditOK

	numKinds
)

var kindNames = [numKinds]string{
	"none",
	"syscall", "syscall-end",
	"ksyscall", "ksyscall-end",
	"svccall", "svccall-end",
	"svcreq",
	"msg-send", "reply-send", "msg-recv",
	"xfer", "xfer-end",
	"pkt-inject", "pkt-deliver", "pkt-drop", "pkt-corrupt",
	"poisoned", "retransmit", "xmit-abort", "op-timeout",
	"config", "reply-drop", "crash",
	"deadline-drop", "admit-refuse", "shed", "breaker",
	"credit-stall", "credit-ok",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// Event is one structured trace record. PE is the NoC node the event
// originates from (-1 if none). The Arg fields are kind-specific.
//
// Events are 46-byte by-value flyweights: they travel through Emit,
// the flight rings, and sinks as copies, never as pointers, so the
// steady-state emission path allocates nothing (TestEmitZeroAlloc)
// and no event can be mutated retroactively.
type Event struct {
	At    sim.Time
	PE    int32
	Layer Layer
	Kind  Kind
	Span  SpanID
	Arg0  uint64
	Arg1  uint64
	Arg2  uint64
}

// EncodedSize is the fixed length of an encoded event.
const EncodedSize = 8 + 4 + 1 + 1 + 8 + 8 + 8 + 8

// AppendBinary appends the event's fixed little-endian encoding: the
// canonical byte stream the determinism witness hashes.
func (ev Event) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(ev.At))
	b = binary.LittleEndian.AppendUint32(b, uint32(ev.PE))
	b = append(b, byte(ev.Layer), byte(ev.Kind))
	b = binary.LittleEndian.AppendUint64(b, uint64(ev.Span))
	b = binary.LittleEndian.AppendUint64(b, ev.Arg0)
	b = binary.LittleEndian.AppendUint64(b, ev.Arg1)
	return binary.LittleEndian.AppendUint64(b, ev.Arg2)
}

// String renders the event as one human-readable line.
func (ev Event) String() string {
	return fmt.Sprintf("[%10d] pe%-2d %-7s %-11s span=%-4d %d %d %d",
		ev.At, ev.PE, ev.Layer, ev.Kind, ev.Span, ev.Arg0, ev.Arg1, ev.Arg2)
}

// Options parameterizes a Tracer.
type Options struct {
	// Sink, if set, receives every emitted event in emission order.
	Sink func(Event)
	// FlightRecorder, if positive, keeps a ring of the last N events
	// per PE for the failure dump. Zero disables the recorder.
	FlightRecorder int
}

// DefaultFlightRecorder is the per-PE ring capacity harnesses use.
const DefaultFlightRecorder = 64

// Tracer collects structured events and histograms for one run. It is
// engine-local state: like everything else in the simulation it must
// only be touched from simulation context (no locking).
//
// A nil *Tracer is valid everywhere and permanently off, so components
// hold a plain field and call On() without nil checks.
type Tracer struct {
	enabled bool
	//m3vet:resolve sharedstate owner span ids are allocated by the emitting simulation context only
	nextSpan SpanID
	sink     func(Event)

	flightCap int
	//m3vet:resolve sharedstate owner per-PE rings are created lazily and written by the emitting context only
	rings []*flightRing // index = PE node id

	//m3vet:resolve sharedstate owner hardware histograms are observed by the emitting context only
	hists   [NumHists]Histogram
	metrics *Registry
	slos    *SLOSet
}

// New creates an enabled tracer.
func New(opt Options) *Tracer {
	t := &Tracer{enabled: true, sink: opt.Sink, flightCap: opt.FlightRecorder,
		metrics: NewRegistry(), slos: NewSLOSet()}
	for i := range t.hists {
		t.hists[i].Name = HistID(i).String()
	}
	return t
}

// On reports whether events should be produced. Every instrumentation
// site guards event construction and histogram updates with it (m3vet:
// obsguard), so a disabled tracer costs one branch and nothing else.
func (t *Tracer) On() bool { return t != nil && t.enabled }

// SetEnabled toggles collection, e.g. to scope a trace to the measured
// phase of a benchmark.
func (t *Tracer) SetEnabled(v bool) { t.enabled = v }

// NewSpan allocates a fresh causal span id.
func (t *Tracer) NewSpan() SpanID {
	t.nextSpan++
	return t.nextSpan
}

// Emit records one event: into the per-PE flight ring (if armed) and
// the sink (if installed).
func (t *Tracer) Emit(ev Event) {
	if t == nil || !t.enabled {
		return
	}
	if t.flightCap > 0 && ev.PE >= 0 {
		t.ring(int(ev.PE)).push(ev)
	}
	if t.sink != nil {
		t.sink(ev)
	}
}

// Hist returns the named histogram.
func (t *Tracer) Hist(id HistID) *Histogram { return &t.hists[id] }

// Metrics returns the tracer's metrics registry (nil for a nil tracer;
// the nil registry is valid and inert, like the tracer itself).
func (t *Tracer) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.metrics
}

// SLOs returns the tracer's service-level-objective set (nil for a nil
// tracer; the nil set is valid and inert, like the nil registry).
func (t *Tracer) SLOs() *SLOSet {
	if t == nil {
		return nil
	}
	return t.slos
}

// Histograms returns all histograms in fixed id order.
func (t *Tracer) Histograms() []*Histogram {
	hs := make([]*Histogram, NumHists)
	for i := range t.hists {
		hs[i] = &t.hists[i]
	}
	return hs
}
