package obs

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestMetricsNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", -1)
	g := r.Gauge("y", 0)
	s := r.Series("z", -1, func() int64 { return 9 })
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	if c.Value() != 0 || g.Value() != 0 || s.Last() != 0 || s.Samples() != nil {
		t.Fatalf("nil registry metrics not inert: c=%d g=%d s=%d", c.Value(), g.Value(), s.Last())
	}
	if r.Entries() != nil || r.Interval() != 0 {
		t.Fatalf("nil registry not empty")
	}
	r.StartSampler(sim.NewEngine(), 10) // must not panic
}

func TestMetricsIdentityAndOrder(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("a_total", -1)
	b := r.Counter("b_total", 2)
	b2 := r.Counter("b_total", 2)
	if b != b2 {
		t.Fatalf("same (name, idx) returned distinct counters")
	}
	if r.Counter("b_total", 3) == b {
		t.Fatalf("distinct idx returned same counter")
	}
	a.Inc()
	b.Add(7)
	r.Gauge("depth", -1).Set(-4)
	got := make([]string, 0, len(r.Entries()))
	for _, e := range r.Entries() {
		got = append(got, e.Name)
	}
	want := "a_total b_total b_total depth"
	if strings.Join(got, " ") != want {
		t.Fatalf("registration order = %q, want %q", strings.Join(got, " "), want)
	}
}

func TestMetricsKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", -1)
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", -1)
}

func TestSamplerTicksOnSimClock(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry()
	v := int64(0)
	s := r.Series("load", -1, func() int64 { return v })
	// A workload that advances v at known cycles and keeps the engine
	// busy past three ticks.
	eng.Schedule(5, func() { v = 10 })
	eng.Schedule(15, func() { v = 20 })
	eng.Schedule(35, func() {})
	r.StartSampler(eng, 10)
	eng.Run()
	// Ticks at 10, 20, 30: the 40-tick finds the queue empty afterwards
	// and stops; sample at 10 sees v=10, at 20 sees v=20.
	samples := s.Samples()
	if len(samples) < 3 {
		t.Fatalf("got %d samples, want >= 3 (%v)", len(samples), samples)
	}
	if samples[0] != 10 || samples[1] != 20 || samples[2] != 20 {
		t.Fatalf("samples = %v, want [10 20 20 ...]", samples)
	}
	if r.Interval() != 10 {
		t.Fatalf("Interval() = %d, want 10", r.Interval())
	}
}

func TestSamplerOffSchedulesNothing(t *testing.T) {
	// Without StartSampler the registry must not touch the engine: a
	// run with metrics registered executes exactly as many events as
	// one without.
	run := func(register bool) (uint64, sim.Time) {
		eng := sim.NewEngine()
		if register {
			r := NewRegistry()
			r.Counter("c", -1).Inc()
			r.Series("s", -1, func() int64 { return 1 })
		}
		eng.Schedule(5, func() {})
		eng.Schedule(9, func() {})
		end := eng.Run()
		return eng.ExecutedEvents(), end
	}
	withEv, withEnd := run(true)
	withoutEv, withoutEnd := run(false)
	if withEv != withoutEv || withEnd != withoutEnd {
		t.Fatalf("registry without sampler perturbed the run: %d@%d vs %d@%d",
			withEv, withEnd, withoutEv, withoutEnd)
	}
}

func TestSnapshotDeterministicAndFormatted(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("dtu_stalls_total", 2).Add(17)
		r.Gauge("queue_depth", -1).Set(-3)
		s := r.Series("pe_idle", 0, nil)
		s.samples = []int64{0, 12, 40}
		return r
	}
	snap := build().Snapshot()
	want := `# m3 metrics v1 interval=0
counter dtu_stalls_total[2] 17
gauge queue_depth -3
series pe_idle[0] n=3: 0 12 40
`
	if snap != want {
		t.Fatalf("snapshot:\n%s\nwant:\n%s", snap, want)
	}
	if snap != build().Snapshot() {
		t.Fatalf("identical construction produced differing snapshots")
	}
}

func TestEntryValueAndSamples(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", -1).Add(4)
	r.Gauge("g", -1).Set(-2)
	s := r.Series("s", -1, nil)
	s.samples = []int64{1, 2, 3}
	vals := make(map[string]int64)
	for _, e := range r.Entries() {
		vals[e.Name] = e.Value()
		if e.Kind != KindSeries && e.Samples() != nil {
			t.Fatalf("%s: non-series entry reports samples", e.Name)
		}
	}
	if vals["c"] != 4 || vals["g"] != -2 || vals["s"] != 3 {
		t.Fatalf("entry values = %v", vals)
	}
}
