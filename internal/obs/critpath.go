package obs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Critical-path attribution: streaming request-trace assembly over the
// span stream, decomposing each root span's end-to-end latency into
// deterministic blame categories (docs/OBSERVABILITY.md). A CritPath
// is a pure event consumer — install Consume as Options.Sink (or call
// it from a fan-out sink). It schedules no engine events and holds
// bounded state, so it follows the same zero-overhead-when-off
// contract as the tracer itself: no tracer, no events, no work.

// BlameCat is one latency blame category.
type BlameCat uint8

// Blame categories, in report order. Every cycle of a request's
// end-to-end window lands in exactly one category: painting is by
// priority (Shed > NoC > Retry > Queue > Kernel), and whatever no
// instrumented interval covers is app compute by definition.
const (
	BlameApp    BlameCat = iota // uninstrumented compute on the app PE
	BlameQueue                  // DTU queueing: msg flights, credit stalls, recv→handler gaps, xfers
	BlameNoC                    // wire time: packet inject→deliver flights
	BlameKernel                 // kernel syscall handling, kernel→service calls, service handling
	BlameRetry                  // retransmit/backoff gaps inside unreliable flights
	BlameShed                   // overload fast-fail aftermath: first shed verdict → root end
	NumBlame
)

var blameNames = [NumBlame]string{"app", "queue", "noc", "kernel", "retry", "shed"}

func (b BlameCat) String() string {
	if int(b) < len(blameNames) {
		return blameNames[b]
	}
	return fmt.Sprintf("blame%d", uint8(b))
}

// blamePrio maps a category to its painting priority (higher wins when
// intervals overlap). BlameApp is the unpainted remainder.
var blamePrio = [NumBlame]int{0, 2, 4, 1, 3, 5}

// BlameVec is a per-category cycle decomposition. The categories sum
// to the request's end-to-end latency.
type BlameVec [NumBlame]uint64

// Total returns the sum over all categories.
func (v BlameVec) Total() uint64 {
	var s uint64
	for _, c := range v {
		s += c
	}
	return s
}

func (v *BlameVec) add(o BlameVec) {
	for i, c := range o {
		v[i] += c
	}
}

// Request is the completed-request summary the engine keeps per root
// span: identity, outcome, and the blame decomposition.
type Request struct {
	Span  SpanID
	PE    int32    // root PE
	Kind  Kind     // root kind (EvSyscallStart or EvSvcCallStart)
	Op    uint64   // root Arg0 (opcode / endpoint)
	Start sim.Time // root open
	End   sim.Time // root close
	//m3vet:resolve sharedstate owner set once at completion in the sink callback, read-only afterwards
	Fail bool // root closed with an error, or a shed verdict fired
	//m3vet:resolve sharedstate owner computed once at completion in the sink callback, read-only afterwards
	Blame BlameVec
}

// Latency returns the end-to-end window length.
func (r Request) Latency() sim.Time { return r.End - r.Start }

// Exemplar is one worst-N request kept with its full event tree, so
// the exact p99/p99.9 path can be exported (m3trace -span).
type Exemplar struct {
	Request
	//m3vet:resolve sharedstate owner event tree is copied once at capture in the sink callback
	Events    []Event
	Truncated bool // per-request event cap hit; tree is a prefix
}

// CritPathOptions bounds the engine. Zero values pick the defaults.
type CritPathOptions struct {
	// MaxActive caps concurrently tracked root spans; beyond it the
	// oldest active root is evicted flight-recorder-style (counted,
	// never reported). Default 256.
	MaxActive int
	// MaxEvents caps the per-request event list. Requests that
	// overflow keep a prefix and are flagged truncated. Default 512.
	MaxEvents int
	// MaxRequests caps retained per-request summaries (the quantile
	// population). Later completions still feed totals, histogram and
	// SLOs, but are dropped from the population (counted). Default 1<<16.
	MaxRequests int
	// Exemplars is the worst-N full-tree capture count. Default 8.
	Exemplars int
	// SLO, if set, receives every completed request as an observation
	// (latency, ok) at its completion timestamp.
	SLO *SLOSet
}

func (o CritPathOptions) withDefaults() CritPathOptions {
	if o.MaxActive <= 0 {
		o.MaxActive = 256
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = 512
	}
	if o.MaxRequests <= 0 {
		o.MaxRequests = 1 << 16
	}
	if o.Exemplars <= 0 {
		o.Exemplars = 8
	}
	return o
}

// reqState is one in-flight root span being assembled.
type reqState struct {
	root Event
	//m3vet:resolve sharedstate owner event list grows in the sink callback only
	events []Event
	//m3vet:resolve sharedstate owner truncation flag is set in the sink callback only
	truncated bool
}

// CritPath assembles request trees from the span stream and attributes
// their latency. Engine-local, simulation-context-only state, like the
// Tracer it feeds from.
type CritPath struct {
	opt CritPathOptions

	//m3vet:resolve sharedstate owner critpath state is mutated only from the emitting simulation context (sink callback)
	active map[SpanID]*reqState
	//m3vet:resolve sharedstate owner eviction order is appended/advanced in the sink callback only
	order []SpanID
	//m3vet:resolve sharedstate owner head index advances with evictions in the sink callback only
	orderHead int

	//m3vet:resolve sharedstate owner summaries are appended on request completion in the sink callback only
	summaries []Request
	//m3vet:resolve sharedstate owner exemplar list is re-sorted on completion in the sink callback only
	exemplars []*Exemplar

	//m3vet:resolve sharedstate owner aggregate blame is bumped on completion in the sink callback only
	total BlameVec
	//m3vet:resolve sharedstate owner end-to-end histogram is observed on completion in the sink callback only
	hist Histogram

	//m3vet:resolve sharedstate owner counters are bumped in the sink callback only
	completed, failed, evicted, truncated, dropped uint64
}

// NewCritPath creates an attribution engine. Install Consume as the
// tracer sink.
func NewCritPath(opt CritPathOptions) *CritPath {
	o := opt.withDefaults()
	return &CritPath{
		opt:    o,
		active: make(map[SpanID]*reqState, o.MaxActive),
		hist:   Histogram{Name: "critpath_e2e"},
	}
}

// isRoot reports whether ev opens a request root: an application-side
// syscall or service call. Kernel-side svccall intervals carry the
// enclosing request's span and are tree nodes, not roots.
func isRoot(ev Event) bool {
	return ev.Layer == LApp && ev.Span != 0 &&
		(ev.Kind == EvSyscallStart || ev.Kind == EvSvcCallStart)
}

// rootEnd maps a root's opening kind to its closing kind.
func rootEnd(k Kind) Kind {
	if k == EvSyscallStart {
		return EvSyscallEnd
	}
	return EvSvcCallEnd
}

// isShedVerdict reports whether k is an overload fast-fail verdict:
// from its first occurrence the request is living in the shed path.
func isShedVerdict(k Kind) bool {
	return k == EvShed || k == EvAdmitRefuse || k == EvDeadlineDrop || k == EvBreaker
}

// Consume ingests one event. It is shaped to serve as Options.Sink.
func (c *CritPath) Consume(ev Event) {
	if c == nil || ev.Span == 0 {
		return
	}
	st, ok := c.active[ev.Span]
	if !ok {
		if !isRoot(ev) {
			return // tail of an evicted or pre-existing span
		}
		c.evictOldest()
		st = &reqState{root: ev, events: make([]Event, 0, 16)}
		c.active[ev.Span] = st
		c.order = append(c.order, ev.Span)
	}
	if len(st.events) < c.opt.MaxEvents {
		st.events = append(st.events, ev)
	} else {
		st.truncated = true
	}
	if ev.Kind == rootEnd(st.root.Kind) && ev.Layer == LApp && ev.PE == st.root.PE {
		c.finish(ev.Span, st, ev)
	}
}

// evictOldest makes room for a new root if the active set is full.
func (c *CritPath) evictOldest() {
	for len(c.active) >= c.opt.MaxActive && c.orderHead < len(c.order) {
		span := c.order[c.orderHead]
		c.orderHead++
		if _, live := c.active[span]; live {
			delete(c.active, span)
			c.evicted++
		}
	}
	// Compact the order slice once the dead prefix dominates.
	if c.orderHead > 0 && c.orderHead*2 >= len(c.order) {
		c.order = append(c.order[:0], c.order[c.orderHead:]...)
		c.orderHead = 0
	}
}

// finish closes a request: attribute, summarize, feed histogram/SLOs,
// and capture an exemplar if it ranks.
func (c *CritPath) finish(span SpanID, st *reqState, end Event) {
	delete(c.active, span)
	req := Request{
		Span: span, PE: st.root.PE, Kind: st.root.Kind, Op: st.root.Arg0,
		Start: st.root.At, End: end.At,
	}
	shedAt, shed := firstShed(st.events)
	req.Fail = end.Arg1 != 0 || shed
	req.Blame = attribute(st.events, req.Start, req.End, shedAt, shed)
	if st.truncated {
		c.truncated++
	}
	c.completed++
	if req.Fail {
		c.failed++
	}
	c.total.add(req.Blame)
	c.hist.Observe(uint64(req.Latency()))
	if c.opt.SLO != nil {
		c.opt.SLO.ObserveAll(req.End, req.Latency(), !req.Fail)
	}
	if len(c.summaries) < c.opt.MaxRequests {
		c.summaries = append(c.summaries, req)
	} else {
		c.dropped++
	}
	c.offerExemplar(req, st)
}

// exemplarLess orders worst-first: latency descending, SpanID
// ascending as the deterministic tie-break.
func exemplarLess(a, b *Exemplar) bool {
	if a.Latency() != b.Latency() {
		return a.Latency() > b.Latency()
	}
	return a.Span < b.Span
}

func (c *CritPath) offerExemplar(req Request, st *reqState) {
	ex := &Exemplar{Request: req, Truncated: st.truncated}
	if len(c.exemplars) >= c.opt.Exemplars {
		last := c.exemplars[len(c.exemplars)-1]
		if !exemplarLess(ex, last) {
			return
		}
		c.exemplars = c.exemplars[:len(c.exemplars)-1]
	}
	ex.Events = append([]Event(nil), st.events...)
	c.exemplars = append(c.exemplars, ex)
	sort.SliceStable(c.exemplars, func(i, j int) bool {
		return exemplarLess(c.exemplars[i], c.exemplars[j])
	})
}

// firstShed returns the timestamp of the first overload verdict in the
// request, if any.
func firstShed(events []Event) (sim.Time, bool) {
	for _, ev := range events {
		if isShedVerdict(ev.Kind) {
			return ev.At, true
		}
	}
	return 0, false
}

// paintIv is one blame-painted interval.
type paintIv struct {
	start, end sim.Time
	cat        BlameCat
}

// attribute decomposes the window [s,e] of one request. It builds
// category intervals from the request's own events and paints every
// cycle with the highest-priority covering category; the unpainted
// remainder is app compute. The categories sum exactly to e-s.
func attribute(events []Event, s, e sim.Time, shedAt sim.Time, shed bool) BlameVec {
	var paints []paintIv
	add := func(a, b sim.Time, cat BlameCat) {
		// Clip to the root window; degenerate intervals paint nothing.
		if a < s {
			a = s
		}
		if b > e {
			b = e
		}
		if b > a {
			paints = append(paints, paintIv{a, b, cat})
		}
	}

	intervals, _ := Intervals(events)

	// Handler starts: where kernel/service processing of this span
	// begins on some PE. Used to close receiver-side queueing gaps.
	type handlerStart struct {
		pe int32
		at sim.Time
	}
	var handlers []handlerStart
	for _, ev := range events {
		if ev.Kind == EvKSyscallStart || ev.Kind == EvSvcReq {
			handlers = append(handlers, handlerStart{ev.PE, ev.At})
		}
	}

	// Retransmit instants: any message flight whose window contains one
	// is a lossy flight — its non-wire time is retry/backoff.
	var rexmits []sim.Time
	for _, ev := range events {
		if ev.Kind == EvRetransmit || ev.Kind == EvXmitAbort {
			rexmits = append(rexmits, ev.At)
		}
	}

	// Service handling: EvSvcReq → next reply leaving the same PE.
	// (The service's reply is the EvReplySend with this span on the
	// service PE.) Painted as kernel time like kernel-side intervals.
	pendingSvc := map[int32]sim.Time{}
	for _, ev := range events {
		switch ev.Kind {
		case EvSvcReq:
			if _, busy := pendingSvc[ev.PE]; !busy {
				pendingSvc[ev.PE] = ev.At
			}
		case EvReplySend:
			if at, busy := pendingSvc[ev.PE]; busy {
				add(at, ev.At, BlameKernel)
				delete(pendingSvc, ev.PE)
			}
		}
	}

	// Credit stalls: EvCreditStall → EvCreditOK on the same PE.
	pendingStall := map[int32]sim.Time{}
	for _, ev := range events {
		switch ev.Kind {
		case EvCreditStall:
			if _, busy := pendingStall[ev.PE]; !busy {
				pendingStall[ev.PE] = ev.At
			}
		case EvCreditOK:
			if at, busy := pendingStall[ev.PE]; busy {
				add(at, ev.At, BlameQueue)
				delete(pendingStall, ev.PE)
			}
		}
	}

	for _, iv := range intervals {
		switch iv.Kind {
		case EvKSyscallStart, EvSvcCallStart:
			// Kernel-side processing. (The app-layer svccall root is the
			// whole window and paints nothing; kernel-layer ones do.)
			if iv.Layer != LApp {
				add(iv.Start, iv.End, BlameKernel)
			}
		case EvXferStart:
			add(iv.Start, iv.End, BlameQueue)
		case EvMsgSend, EvReplySend:
			add(iv.Start, iv.End, BlameQueue)
			// Receiver-side queueing: the message landed at iv.End but
			// the handler on the destination PE (Arg1) picked it up
			// later — paint the gap as queueing, not app.
			dst := int32(iv.Arg1)
			var gapEnd sim.Time
			for _, h := range handlers {
				if h.pe == dst && h.at >= iv.End && (gapEnd == 0 || h.at < gapEnd) {
					gapEnd = h.at
				}
			}
			if gapEnd > iv.End {
				add(iv.End, gapEnd, BlameQueue)
			}
			// Lossy flight: everything not covered by wire time inside
			// it is retransmit/backoff.
			for _, t := range rexmits {
				if t >= iv.Start && t <= iv.End {
					add(iv.Start, iv.End, BlameRetry)
					break
				}
			}
		case EvPktInject:
			add(iv.Start, iv.End, BlameNoC)
		}
	}

	if shed {
		add(shedAt, e, BlameShed)
	}

	return paintSweep(paints, s, e)
}

// paintSweep resolves overlapping paints by priority over [s,e] and
// returns the per-category totals, with the remainder as BlameApp.
func paintSweep(paints []paintIv, s, e sim.Time) BlameVec {
	var v BlameVec
	if e <= s {
		return v
	}
	if len(paints) == 0 {
		v[BlameApp] = uint64(e - s)
		return v
	}
	// Elementary segments between sorted unique boundaries: a paint
	// covers a segment iff it covers both endpoints (boundaries include
	// every paint endpoint, so there is no partial overlap).
	bounds := make([]sim.Time, 0, 2*len(paints)+2)
	bounds = append(bounds, s, e)
	for _, p := range paints {
		bounds = append(bounds, p.start, p.end)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:1]
	for _, b := range bounds[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	for i := 0; i+1 < len(uniq); i++ {
		t0, t1 := uniq[i], uniq[i+1]
		best, bestPrio := BlameApp, -1
		for _, p := range paints {
			if p.start <= t0 && p.end >= t1 && blamePrio[p.cat] > bestPrio {
				best, bestPrio = p.cat, blamePrio[p.cat]
			}
		}
		v[best] += uint64(t1 - t0)
	}
	return v
}

// --- reporting ---

// ReqQuantile is the blame decomposition of the request sitting at one
// latency quantile (nearest-rank over the retained population).
type ReqQuantile struct {
	Q       float64
	Span    SpanID
	Kind    string
	Latency uint64
	Fail    bool
	Blame   BlameVec
}

// Report is the deterministic attribution summary.
type Report struct {
	Completed uint64
	Failed    uint64
	Evicted   uint64 // active roots dropped by the MaxActive bound
	Truncated uint64 // completed requests whose event list hit MaxEvents
	Dropped   uint64 // completions past MaxRequests (not in quantiles)
	Total     BlameVec
	Quantiles []ReqQuantile
	Exemplars []*Exemplar
}

// Hist returns the end-to-end latency histogram over completed
// requests.
func (c *CritPath) Hist() *Histogram { return &c.hist }

// Completed returns the number of finished requests.
func (c *CritPath) Completed() uint64 { return c.completed }

// Requests returns the retained request population sorted by
// (latency, SpanID) ascending — the quantile order.
func (c *CritPath) Requests() []Request {
	out := append([]Request(nil), c.summaries...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Latency() != out[j].Latency() {
			return out[i].Latency() < out[j].Latency()
		}
		return out[i].Span < out[j].Span
	})
	return out
}

// RequestAt returns the request at quantile q (nearest-rank), or false
// if none completed.
func (c *CritPath) RequestAt(q float64) (Request, bool) {
	pop := c.Requests()
	if len(pop) == 0 {
		return Request{}, false
	}
	idx := int(q*float64(len(pop))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(pop) {
		idx = len(pop) - 1
	}
	return pop[idx], true
}

// ReportAt builds the attribution report for the given quantiles.
func (c *CritPath) ReportAt(qs []float64) Report {
	r := Report{
		Completed: c.completed, Failed: c.failed, Evicted: c.evicted,
		Truncated: c.truncated, Dropped: c.dropped, Total: c.total,
		Exemplars: append([]*Exemplar(nil), c.exemplars...),
	}
	for _, q := range qs {
		req, ok := c.RequestAt(q)
		if !ok {
			continue
		}
		r.Quantiles = append(r.Quantiles, ReqQuantile{
			Q: q, Span: req.Span, Kind: req.Kind.String(),
			Latency: uint64(req.Latency()), Fail: req.Fail, Blame: req.Blame,
		})
	}
	return r
}

// WriteFolded writes the aggregate blame decomposition in folded
// flamegraph format (root-kind;category cycles), the same shape
// m3prof's WriteFolded emits, so the two collapse into one flamegraph.
func (c *CritPath) WriteFolded(w io.Writer) error {
	type line struct {
		path   string
		cycles uint64
	}
	agg := map[string]uint64{}
	for _, req := range c.summaries {
		for cat, cyc := range req.Blame {
			if cyc == 0 {
				continue
			}
			agg[req.Kind.String()+";"+BlameCat(cat).String()] += cyc
		}
	}
	lines := make([]line, 0, len(agg))
	//m3vet:allow nodeterminism lines are collected then sorted by path before writing
	for p, cyc := range agg {
		lines = append(lines, line{p, cyc})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].path < lines[j].path })
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "%s %d\n", l.path, l.cycles); err != nil {
			return err
		}
	}
	return nil
}
