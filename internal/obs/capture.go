package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Run captures: a self-describing snapshot of everything one
// instrumented run observed — the folded cycle-attribution profile,
// the metrics registry, the latency histograms, and the critical-path
// blame summary — bundled into one schema-versioned value. A capture
// is the unit the differential-observability layer (diff.go, cmd/m3diff)
// aligns: two captures of the same workload from two trees explain a
// bench-gate regression in terms of layers, span paths, histogram
// shifts, and blame drift instead of a bare "N% slower".
//
// Determinism contract: a capture contains only simulation-derived
// values in fixed orders (profile paths sorted, metrics in registration
// order, histograms in id order, blame in category order), so identical
// runs — including across serial-heap, serial-calendar, and parallel
// engines — marshal to byte-identical JSON. Capturing is pure
// post-processing over the existing event stream (Profiler and CritPath
// are ordinary sinks); with no capture armed, nothing here runs.

// CaptureSchema is the run-capture schema version. Bump it whenever the
// capture layout changes incompatibly; DiffCaptures refuses to align
// captures of different schema versions.
const CaptureSchema = 1

// CapturePath is one folded-profile line: a ';'-separated call path and
// the self-cycles attributed to its leaf frame.
type CapturePath struct {
	Path   string `json:"path"`
	Cycles uint64 `json:"cycles"`
}

// CaptureMetric is one registry entry's end-of-run scalar value (a
// series reports its last sample).
type CaptureMetric struct {
	Name string `json:"name"`
	// Idx distinguishes vector-metric instances; -1 marks a scalar.
	Idx   int    `json:"idx"`
	Kind  string `json:"kind"`
	Value int64  `json:"value"`
}

// CaptureBucket is one non-empty histogram bucket: Bit is the bucket
// index (values v with bits.Len64(v) == Bit; see Histogram).
type CaptureBucket struct {
	Bit   int    `json:"bit"`
	Count uint64 `json:"count"`
}

// CaptureHist is one latency histogram, sparsely encoded: only
// non-empty buckets are stored.
type CaptureHist struct {
	Name    string          `json:"name"`
	Count   uint64          `json:"count"`
	Sum     uint64          `json:"sum"`
	Max     uint64          `json:"max"`
	Buckets []CaptureBucket `json:"buckets,omitempty"`
}

// CaptureBlame is one blame category's aggregate cycles over all
// completed requests.
type CaptureBlame struct {
	Category string `json:"category"`
	Cycles   uint64 `json:"cycles"`
}

// CaptureBlameSet is the critical-path summary of a capture.
type CaptureBlameSet struct {
	Completed uint64         `json:"completed"`
	Failed    uint64         `json:"failed"`
	Total     []CaptureBlame `json:"total"`
}

// RunCapture is the full self-describing capture of one run.
type RunCapture struct {
	Schema   int             `json:"schema"`
	Workload string          `json:"workload"`
	Profile  []CapturePath   `json:"profile"`
	Metrics  []CaptureMetric `json:"metrics"`
	Hists    []CaptureHist   `json:"hists"`
	Blame    CaptureBlameSet `json:"blame"`
}

// CaptureHistogram encodes a histogram sparsely. Empty histograms
// produce no buckets; the zero counts stay diffable.
func CaptureHistogram(h *Histogram) CaptureHist {
	ch := CaptureHist{Name: h.Name, Count: h.n, Sum: h.sum, Max: h.max}
	for bit, c := range h.counts {
		if c != 0 {
			ch.Buckets = append(ch.Buckets, CaptureBucket{Bit: bit, Count: c})
		}
	}
	return ch
}

// Histogram reconstructs the dense histogram, so quantile logic runs on
// captures exactly as it runs live.
func (ch CaptureHist) Histogram() Histogram {
	h := Histogram{Name: ch.Name, n: ch.Count, sum: ch.Sum, max: ch.Max}
	for _, b := range ch.Buckets {
		if b.Bit >= 0 && b.Bit < len(h.counts) {
			h.counts[b.Bit] = b.Count
		}
	}
	return h
}

// Quantile returns the upper bound of the bucket holding the q-th
// quantile of the captured values (0 when the capture is empty),
// identical to Histogram.Quantile on the live histogram.
func (ch CaptureHist) Quantile(q float64) uint64 {
	h := ch.Histogram()
	return h.Quantile(q)
}

// NewRunCapture assembles a capture from the run's sinks. Any argument
// may be nil; the corresponding section stays empty. hists are captured
// in the given order.
func NewRunCapture(workload string, prof *Profiler, cp *CritPath, reg *Registry, hists []*Histogram) *RunCapture {
	c := &RunCapture{Schema: CaptureSchema, Workload: workload}
	if prof != nil {
		for _, pc := range prof.Folded() {
			c.Profile = append(c.Profile, CapturePath{Path: pc.Path, Cycles: pc.Cycles})
		}
	}
	for _, e := range reg.Entries() {
		c.Metrics = append(c.Metrics, CaptureMetric{
			Name: e.Name, Idx: e.Idx, Kind: e.Kind.String(), Value: e.Value(),
		})
	}
	for _, h := range hists {
		c.Hists = append(c.Hists, CaptureHistogram(h))
	}
	if cp != nil {
		c.Blame = CaptureBlameSet{Completed: cp.completed, Failed: cp.failed}
		for cat := BlameCat(0); cat < NumBlame; cat++ {
			c.Blame.Total = append(c.Blame.Total, CaptureBlame{
				Category: cat.String(), Cycles: cp.total[cat],
			})
		}
	}
	return c
}

// WriteJSON renders the capture as indented JSON with a trailing
// newline — deterministic, since every slice is in a fixed order.
func (c *RunCapture) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadCaptureJSON parses a capture and validates its schema version.
func ReadCaptureJSON(data []byte) (*RunCapture, error) {
	var c RunCapture
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("obs: parsing capture JSON: %w", err)
	}
	if c.Schema != CaptureSchema {
		return nil, fmt.Errorf("obs: capture schema %d, this binary speaks %d", c.Schema, CaptureSchema)
	}
	// A capture always names its workload; its absence means this is
	// some other schema-1 JSON (a bench file, say), not a capture.
	if c.Workload == "" {
		return nil, fmt.Errorf("obs: capture JSON names no workload")
	}
	return &c, nil
}
