package obs

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/sim"
)

// Span reconstruction and Chrome-trace ("Perfetto") export. The event
// stream pairs into intervals mechanically: same-PE kinds
// (syscall, ksyscall, svccall, xfer) pair start→end on a per-(PE,
// span) stack; cross-PE flights pair a send (EvMsgSend/EvReplySend →
// EvMsgRecv, EvPktInject → EvPktDeliver) with the next matching
// arrival of the same span, FIFO. Everything else is an instant.

// Interval is one reconstructed span segment.
type Interval struct {
	Span  SpanID
	Kind  Kind // the interval's opening kind
	Layer Layer
	PE    int32 // PE of the opening event
	Start sim.Time
	End   sim.Time
	Arg0  uint64
	Arg1  uint64
}

// endOf maps closing kinds to their opening kind for same-PE pairs.
var endOf = map[Kind]Kind{
	EvSyscallEnd:  EvSyscallStart,
	EvKSyscallEnd: EvKSyscallStart,
	EvSvcCallEnd:  EvSvcCallStart,
	EvXferEnd:     EvXferStart,
}

// isFlightSend reports whether k opens a cross-PE flight.
func isFlightSend(k Kind) bool {
	return k == EvMsgSend || k == EvReplySend || k == EvPktInject
}

// flightEnd maps a flight arrival to the queue it closes: message
// flights (either send kind) and packet flights.
func flightClass(k Kind) int {
	switch k {
	case EvMsgSend, EvReplySend, EvMsgRecv:
		return 0
	case EvPktInject, EvPktDeliver:
		return 1
	}
	return -1
}

type stackKey struct {
	pe   int32
	span SpanID
	kind Kind
}

type flightKey struct {
	span  SpanID
	class int
}

// Intervals pairs the event stream (in emission order) into intervals
// and leftover instants. Events that open an interval but never close
// (and vice versa) are returned as instants, so nothing is silently
// dropped. The result order is deterministic: intervals in closing
// order, instants in emission order.
func Intervals(events []Event) (intervals []Interval, instants []Event) {
	stacks := make(map[stackKey][]Event)
	flights := make(map[flightKey][]Event)
	for _, ev := range events {
		switch {
		case endOf[ev.Kind] != EvNone && ev.Kind != EvNone:
			key := stackKey{ev.PE, ev.Span, endOf[ev.Kind]}
			st := stacks[key]
			if len(st) == 0 {
				instants = append(instants, ev)
				continue
			}
			open := st[len(st)-1]
			stacks[key] = st[:len(st)-1]
			intervals = append(intervals, Interval{
				Span: open.Span, Kind: open.Kind, Layer: open.Layer, PE: open.PE,
				Start: open.At, End: ev.At, Arg0: open.Arg0, Arg1: open.Arg1,
			})
		case ev.Kind == EvSyscallStart || ev.Kind == EvKSyscallStart ||
			ev.Kind == EvSvcCallStart || ev.Kind == EvXferStart:
			key := stackKey{ev.PE, ev.Span, ev.Kind}
			stacks[key] = append(stacks[key], ev)
		case isFlightSend(ev.Kind) && ev.Span != 0:
			key := flightKey{ev.Span, flightClass(ev.Kind)}
			flights[key] = append(flights[key], ev)
		case (ev.Kind == EvMsgRecv || ev.Kind == EvPktDeliver) && ev.Span != 0:
			key := flightKey{ev.Span, flightClass(ev.Kind)}
			q := flights[key]
			if len(q) == 0 {
				instants = append(instants, ev)
				continue
			}
			open := q[0]
			flights[key] = q[1:]
			intervals = append(intervals, Interval{
				Span: open.Span, Kind: open.Kind, Layer: open.Layer, PE: open.PE,
				Start: open.At, End: ev.At, Arg0: open.Arg0, Arg1: open.Arg1,
			})
		default:
			instants = append(instants, ev)
		}
	}
	// Unclosed opens become instants too. The pairing maps are walked
	// via the original event order, not map order, for determinism.
	for _, ev := range events {
		switch {
		case ev.Kind == EvSyscallStart || ev.Kind == EvKSyscallStart ||
			ev.Kind == EvSvcCallStart || ev.Kind == EvXferStart:
			if contains(stacks[stackKey{ev.PE, ev.Span, ev.Kind}], ev) {
				instants = append(instants, ev)
			}
		case isFlightSend(ev.Kind) && ev.Span != 0:
			if contains(flights[flightKey{ev.Span, flightClass(ev.Kind)}], ev) {
				instants = append(instants, ev)
			}
		}
	}
	return intervals, instants
}

func contains(evs []Event, ev Event) bool {
	for _, e := range evs {
		if e == ev {
			return true
		}
	}
	return false
}

// pfEvent is one Chrome-trace record. Field order is fixed by the
// struct, map args are marshalled in sorted key order: the JSON bytes
// are deterministic.
type pfEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Ph    string            `json:"ph"`
	Ts    uint64            `json:"ts"`
	Dur   *uint64           `json:"dur,omitempty"`
	Pid   int32             `json:"pid"`
	Tid   uint8             `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]uint64 `json:"args,omitempty"`
}

type pfTrace struct {
	TraceEvents     []pfEvent `json:"traceEvents"`
	DisplayTimeUnit string    `json:"displayTimeUnit"`
}

// WritePerfetto exports the event stream as Chrome-trace JSON
// (chrome://tracing, Perfetto's legacy JSON importer): intervals
// become complete ("X") slices, leftovers instant ("i") marks.
// pid = PE, tid = layer, ts/dur = simulated cycles (the nominal unit
// is microseconds; the values are cycles — zoom, don't convert).
func WritePerfetto(w io.Writer, events []Event) error {
	intervals, instants := Intervals(events)
	out := make([]pfEvent, 0, len(intervals)+len(instants))
	for _, iv := range intervals {
		dur := uint64(iv.End - iv.Start)
		out = append(out, pfEvent{
			Name: iv.Kind.String(), Cat: iv.Layer.String(), Ph: "X",
			Ts: uint64(iv.Start), Dur: &dur, Pid: iv.PE, Tid: uint8(iv.Layer),
			Args: map[string]uint64{"span": uint64(iv.Span), "arg0": iv.Arg0, "arg1": iv.Arg1},
		})
	}
	for _, ev := range instants {
		out = append(out, pfEvent{
			Name: ev.Kind.String(), Cat: ev.Layer.String(), Ph: "i",
			Ts: uint64(ev.At), Pid: ev.PE, Tid: uint8(ev.Layer), Scope: "t",
			Args: map[string]uint64{"span": uint64(ev.Span), "arg0": ev.Arg0, "arg1": ev.Arg1},
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(pfTrace{TraceEvents: out, DisplayTimeUnit: "ns"})
}
