package obs

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// reqEvents builds the canonical fault-free syscall request tree used
// across the attribution tests: client PE 0, kernel PE 2, one request
// span. Timeline: send at 0, wire 0-10, handler pickup gap 10-20,
// kernel 20-50, reply wire 50-60, client unmarshal 60-70.
func reqEvents(span SpanID) []Event {
	return []Event{
		{At: 0, PE: 0, Layer: LApp, Kind: EvSyscallStart, Span: span, Arg0: 7},
		{At: 0, PE: 0, Layer: LDTU, Kind: EvMsgSend, Span: span, Arg0: 1, Arg1: 2},
		{At: 0, PE: 0, Layer: LNoC, Kind: EvPktInject, Span: span, Arg0: 2},
		{At: 10, PE: 2, Layer: LNoC, Kind: EvPktDeliver, Span: span, Arg0: 0},
		{At: 10, PE: 2, Layer: LDTU, Kind: EvMsgRecv, Span: span, Arg0: 3},
		{At: 20, PE: 2, Layer: LKernel, Kind: EvKSyscallStart, Span: span, Arg0: 7},
		{At: 50, PE: 2, Layer: LKernel, Kind: EvKSyscallEnd, Span: span},
		{At: 50, PE: 2, Layer: LDTU, Kind: EvReplySend, Span: span, Arg0: 3, Arg1: 0},
		{At: 50, PE: 2, Layer: LNoC, Kind: EvPktInject, Span: span, Arg0: 0},
		{At: 60, PE: 0, Layer: LNoC, Kind: EvPktDeliver, Span: span, Arg0: 2},
		{At: 60, PE: 0, Layer: LDTU, Kind: EvMsgRecv, Span: span, Arg0: 1},
		{At: 70, PE: 0, Layer: LApp, Kind: EvSyscallEnd, Span: span, Arg0: 7},
	}
}

func feedCP(c *CritPath, events []Event) {
	for _, ev := range events {
		c.Consume(ev)
	}
}

func TestCritPathBlameDecomposition(t *testing.T) {
	c := NewCritPath(CritPathOptions{})
	feedCP(c, reqEvents(1))

	if c.Completed() != 1 {
		t.Fatalf("completed = %d, want 1", c.Completed())
	}
	req := c.Requests()[0]
	if req.Span != 1 || req.Kind != EvSyscallStart || req.Op != 7 {
		t.Fatalf("request identity = %+v", req)
	}
	if req.Fail {
		t.Fatalf("fault-free request marked failed")
	}
	want := BlameVec{}
	want[BlameNoC] = 20    // both wire flights, 0-10 and 50-60
	want[BlameQueue] = 10  // recv→handler pickup gap, 10-20
	want[BlameKernel] = 30 // kernel handling, 20-50
	want[BlameApp] = 10    // client unmarshal, 60-70
	if req.Blame != want {
		t.Fatalf("blame = %v, want %v", req.Blame, want)
	}
	if got := req.Blame.Total(); got != uint64(req.Latency()) {
		t.Fatalf("blame total %d != latency %d", got, req.Latency())
	}
}

func TestCritPathShedPainting(t *testing.T) {
	span := SpanID(4)
	events := []Event{
		{At: 0, PE: 0, Layer: LApp, Kind: EvSvcCallStart, Span: span, Arg0: 9},
		{At: 0, PE: 0, Layer: LDTU, Kind: EvMsgSend, Span: span, Arg0: 1, Arg1: 2},
		{At: 30, PE: 2, Layer: LKernel, Kind: EvShed, Span: span},
		{At: 70, PE: 0, Layer: LApp, Kind: EvSvcCallEnd, Span: span, Arg0: 9},
	}
	c := NewCritPath(CritPathOptions{})
	feedCP(c, events)
	req := c.Requests()[0]
	if !req.Fail {
		t.Fatalf("shed request not marked failed")
	}
	if got := req.Blame[BlameShed]; got != 40 {
		t.Fatalf("shed blame = %d, want 40 (verdict at 30 → end at 70)", got)
	}
	if got := req.Blame.Total(); got != 70 {
		t.Fatalf("blame total = %d, want 70", got)
	}
}

func TestCritPathRetryPainting(t *testing.T) {
	span := SpanID(6)
	// A lossy flight: first packet dropped, retransmit at 40 after
	// backoff, delivery at 50. Wire time inside the flight is 0-10 and
	// 40-50; the rest of the flight window is retry/backoff.
	events := []Event{
		{At: 0, PE: 0, Layer: LApp, Kind: EvSyscallStart, Span: span, Arg0: 7},
		{At: 0, PE: 0, Layer: LDTU, Kind: EvMsgSend, Span: span, Arg0: 1, Arg1: 2},
		{At: 0, PE: 0, Layer: LNoC, Kind: EvPktInject, Span: span},
		{At: 10, PE: 1, Layer: LNoC, Kind: EvPktDrop, Span: span},
		{At: 40, PE: 0, Layer: LDTU, Kind: EvRetransmit, Span: span, Arg2: 1},
		{At: 40, PE: 0, Layer: LNoC, Kind: EvPktInject, Span: span},
		{At: 50, PE: 2, Layer: LNoC, Kind: EvPktDeliver, Span: span},
		{At: 50, PE: 2, Layer: LDTU, Kind: EvMsgRecv, Span: span},
		{At: 60, PE: 0, Layer: LApp, Kind: EvSyscallEnd, Span: span},
	}
	c := NewCritPath(CritPathOptions{})
	feedCP(c, events)
	req := c.Requests()[0]
	// Pkt pairing is FIFO per span: the dropped inject at 0 pairs with
	// the delivery at 50, so wire covers 0-50 minus nothing visible —
	// the second inject stays unpaired. Retry still claims nothing
	// under the wire interval; what matters is the flight is not
	// blamed on app.
	if req.Blame[BlameApp] != 10 {
		t.Fatalf("app blame = %d, want 10 (only 50-60)", req.Blame[BlameApp])
	}
	if req.Blame[BlameRetry]+req.Blame[BlameNoC]+req.Blame[BlameQueue] != 50 {
		t.Fatalf("flight window not fully attributed: %v", req.Blame)
	}
}

func TestCritPathCreditStallBlame(t *testing.T) {
	span := SpanID(8)
	events := []Event{
		{At: 0, PE: 0, Layer: LApp, Kind: EvSvcCallStart, Span: span, Arg0: 3},
		{At: 5, PE: 0, Layer: LDTU, Kind: EvCreditStall, Span: span, Arg0: 1},
		{At: 45, PE: 0, Layer: LDTU, Kind: EvCreditOK, Span: span, Arg0: 1},
		{At: 60, PE: 0, Layer: LApp, Kind: EvSvcCallEnd, Span: span, Arg0: 3},
	}
	c := NewCritPath(CritPathOptions{})
	feedCP(c, events)
	req := c.Requests()[0]
	if req.Blame[BlameQueue] != 40 {
		t.Fatalf("queue blame = %d, want 40 (credit stall 5-45)", req.Blame[BlameQueue])
	}
	if req.Blame[BlameApp] != 20 {
		t.Fatalf("app blame = %d, want 20", req.Blame[BlameApp])
	}
}

func TestCritPathEviction(t *testing.T) {
	c := NewCritPath(CritPathOptions{MaxActive: 2})
	for span := SpanID(1); span <= 3; span++ {
		c.Consume(Event{At: sim.Time(span), PE: 0, Layer: LApp, Kind: EvSyscallStart, Span: span})
	}
	if len(c.active) != 2 {
		t.Fatalf("active = %d, want 2", len(c.active))
	}
	// Closing the evicted root is a no-op, not a resurrection.
	c.Consume(Event{At: 100, PE: 0, Layer: LApp, Kind: EvSyscallEnd, Span: 1})
	if c.Completed() != 0 {
		t.Fatalf("evicted span completed")
	}
	rep := c.ReportAt(nil)
	if rep.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", rep.Evicted)
	}
}

func TestCritPathExemplarTieBreak(t *testing.T) {
	c := NewCritPath(CritPathOptions{Exemplars: 2})
	complete := func(span SpanID, lat uint64) {
		c.Consume(Event{At: 0, PE: 0, Layer: LApp, Kind: EvSyscallStart, Span: span})
		c.Consume(Event{At: sim.Time(lat), PE: 0, Layer: LApp, Kind: EvSyscallEnd, Span: span})
	}
	complete(5, 100)
	complete(2, 100)
	complete(9, 50)
	rep := c.ReportAt(nil)
	if len(rep.Exemplars) != 2 {
		t.Fatalf("exemplars = %d, want 2", len(rep.Exemplars))
	}
	if rep.Exemplars[0].Span != 2 || rep.Exemplars[1].Span != 5 {
		t.Fatalf("exemplar order = [%d %d], want [2 5] (latency desc, span asc)",
			rep.Exemplars[0].Span, rep.Exemplars[1].Span)
	}
}

func TestCritPathDeterministicReport(t *testing.T) {
	build := func() (*CritPath, []byte) {
		c := NewCritPath(CritPathOptions{Exemplars: 4})
		for span := SpanID(1); span <= 20; span++ {
			feedCP(c, reqEvents(span))
		}
		var buf bytes.Buffer
		if err := c.WriteFolded(&buf); err != nil {
			t.Fatal(err)
		}
		return c, buf.Bytes()
	}
	c1, f1 := build()
	c2, f2 := build()
	r1 := c1.ReportAt([]float64{0.5, 0.99, 0.999})
	r2 := c2.ReportAt([]float64{0.5, 0.99, 0.999})
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("reports differ between identical runs")
	}
	if !bytes.Equal(f1, f2) {
		t.Fatalf("folded outputs differ between identical runs")
	}
	if len(f1) == 0 {
		t.Fatalf("folded output empty")
	}
}

func TestCritPathQuantileSelection(t *testing.T) {
	c := NewCritPath(CritPathOptions{})
	for i := 1; i <= 100; i++ {
		span := SpanID(i)
		c.Consume(Event{At: 0, PE: 0, Layer: LApp, Kind: EvSyscallStart, Span: span})
		c.Consume(Event{At: sim.Time(i), PE: 0, Layer: LApp, Kind: EvSyscallEnd, Span: span})
	}
	if req, _ := c.RequestAt(0.5); req.Latency() != 50 {
		t.Fatalf("p50 latency = %d, want 50", req.Latency())
	}
	if req, _ := c.RequestAt(0.99); req.Latency() != 99 {
		t.Fatalf("p99 latency = %d, want 99", req.Latency())
	}
	if req, _ := c.RequestAt(1.0); req.Latency() != 100 {
		t.Fatalf("p100 latency = %d, want 100", req.Latency())
	}
}

func TestCritPathNilAndForeignEvents(t *testing.T) {
	var c *CritPath
	c.Consume(Event{Kind: EvSyscallStart, Span: 1}) // must not panic
	real := NewCritPath(CritPathOptions{})
	real.Consume(Event{Kind: EvMsgSend, Span: 99})  // tail of unknown span
	real.Consume(Event{Kind: EvSyscallStart})       // span 0
	if len(real.active) != 0 || real.Completed() != 0 {
		t.Fatalf("untracked events created state")
	}
}
