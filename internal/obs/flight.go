package obs

import (
	"fmt"
	"io"
	"strings"
)

// flightRing is one PE's bounded event ring: the last flightCap events
// that PE produced, in arrival order.
type flightRing struct {
	//m3vet:resolve sharedstate owner ring buffer is written by the emitting simulation context only
	buf []Event
	//m3vet:resolve sharedstate owner write cursor advances with each push in the emitting context only
	next int
	//m3vet:resolve sharedstate owner lifetime counter is bumped on push only
	total uint64
}

func (r *flightRing) push(ev Event) {
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	r.total++
}

// events returns the retained events oldest-first.
func (r *flightRing) events() []Event {
	if r.total < uint64(len(r.buf)) {
		return r.buf[:r.next]
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// ring returns (growing the table as needed) the flight ring of pe.
// PE ids are small dense integers, so a slice keeps the dump walk in
// fixed id order without sorting.
func (t *Tracer) ring(pe int) *flightRing {
	for len(t.rings) <= pe {
		t.rings = append(t.rings, nil)
	}
	if t.rings[pe] == nil {
		t.rings[pe] = &flightRing{buf: make([]Event, t.flightCap)}
	}
	return t.rings[pe]
}

// FlightRecording reports whether a flight recorder is armed.
func (t *Tracer) FlightRecording() bool { return t != nil && t.flightCap > 0 }

// WriteFlightDump renders every PE's retained events, oldest-first, in
// PE id order: the post-mortem the chaos harness and the deadlock
// check attach to a failure.
func (t *Tracer) WriteFlightDump(w io.Writer) error {
	if t == nil || t.flightCap == 0 {
		_, err := fmt.Fprintln(w, "flight recorder: not armed")
		return err
	}
	if _, err := fmt.Fprintf(w, "flight recorder: last %d events per PE\n", t.flightCap); err != nil {
		return err
	}
	for pe, r := range t.rings {
		if r == nil || r.total == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "pe %d (%d events total):\n", pe, r.total); err != nil {
			return err
		}
		for _, ev := range r.events() {
			if _, err := fmt.Fprintf(w, "  %s\n", ev); err != nil {
				return err
			}
		}
	}
	return nil
}

// FlightDump renders WriteFlightDump into a string.
func (t *Tracer) FlightDump() string {
	var sb strings.Builder
	_ = t.WriteFlightDump(&sb)
	return sb.String()
}
