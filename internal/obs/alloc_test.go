package obs

import "testing"

// TestEmitZeroAlloc pins the hot-path allocation contract: emitting an
// event into an armed flight ring allocates nothing once the ring
// exists — events are by-value flyweights, the ring is a fixed array.
// A regression here (a pointer field, an interface conversion, a
// fmt call) multiplies across every simulated message.
func TestEmitZeroAlloc(t *testing.T) {
	tr := New(Options{FlightRecorder: DefaultFlightRecorder})
	ev := Event{At: 1, PE: 3, Layer: LDTU, Kind: EvMsgSend, Span: 7, Arg0: 1, Arg1: 2, Arg2: 3}
	tr.Emit(ev) // warm: first emit on a PE allocates its ring
	if allocs := testing.AllocsPerRun(1000, func() {
		ev.At++
		tr.Emit(ev)
	}); allocs != 0 {
		t.Fatalf("Emit allocates %v objects per call, want 0", allocs)
	}
}

// TestHistObserveZeroAlloc: histogram updates ride the same hot path.
func TestHistObserveZeroAlloc(t *testing.T) {
	tr := New(Options{})
	h := tr.Hist(HMsgLatency)
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(42) }); allocs != 0 {
		t.Fatalf("Observe allocates %v objects per call, want 0", allocs)
	}
}

// TestCounterZeroAlloc: cached counter handles must be increment-only.
func TestCounterZeroAlloc(t *testing.T) {
	tr := New(Options{})
	c := tr.Metrics().Counter("alloc_test_total", 0)
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc() }); allocs != 0 {
		t.Fatalf("Inc allocates %v objects per call, want 0", allocs)
	}
}
