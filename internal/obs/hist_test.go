package obs

import (
	"bytes"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not all-zero: count=%d mean=%d max=%d p50=%d",
			h.Count(), h.Mean(), h.Max(), h.Quantile(0.5))
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Bucket 0 is exactly {0}; bucket i covers [2^(i-1), 2^i).
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8} {
		h.Observe(v)
	}
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1}
	for i, c := range h.counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Count() != 7 || h.Sum() != 25 || h.Max() != 8 || h.Mean() != 3 {
		t.Fatalf("count=%d sum=%d max=%d mean=%d", h.Count(), h.Sum(), h.Max(), h.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 10 values: one in bucket 1 (1), eight in bucket 4 (8..15), one in
	// bucket 7 (64). Quantiles return bucket upper bounds.
	h.Observe(1)
	for i := 0; i < 8; i++ {
		h.Observe(8)
	}
	h.Observe(64)
	cases := []struct {
		q    float64
		want uint64
	}{
		{0.10, 1},   // rank 1 -> bucket 1, upper 1
		{0.11, 15},  // rank 2 (ceil) -> bucket 4, upper 15
		{0.50, 15},  // rank 5
		{0.90, 15},  // rank 9
		{0.91, 127}, // rank 10 -> bucket 7, upper 127
		{1.00, 127},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestHistogramMaxValue(t *testing.T) {
	var h Histogram
	h.Observe(^uint64(0))
	if got := h.Quantile(1.0); got != ^uint64(0) {
		t.Fatalf("Quantile(1.0) of MaxUint64 = %d", got)
	}
}

func TestWriteCSVGolden(t *testing.T) {
	tr := New(Options{})
	for _, v := range []uint64{3, 90, 700} {
		tr.Hist(HSyscallRTT).Observe(v)
	}
	tr.Hist(HMsgLatency).Observe(12)
	tr.Hist(HXfer).Observe(513)
	tr.Hist(HLinkOcc).Observe(0)
	// HSvcCall left empty on purpose: empty rows must render all-zero.
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr.Histograms()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "hist.csv", buf.Bytes())
}

func TestHistogramQuantileEdges(t *testing.T) {
	// q=0 and q=1 on an empty histogram stay 0; on a populated one q=0
	// clamps to rank 1 (the lowest bucket) and q=1 is the highest.
	var empty Histogram
	if empty.Quantile(0) != 0 || empty.Quantile(1) != 0 {
		t.Fatalf("empty p0/p100 = %d/%d, want 0/0", empty.Quantile(0), empty.Quantile(1))
	}
	var h Histogram
	h.Observe(1)
	h.Observe(1000) // bucket 10, upper 1023
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("p0 = %d, want 1 (rank clamps to first observation)", got)
	}
	if got := h.Quantile(1); got != 1023 {
		t.Fatalf("p100 = %d, want 1023", got)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(42) // bucket 6, upper 63
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 63 {
			t.Fatalf("Quantile(%v) = %d, want 63 (every quantile is the one sample's bucket)", q, got)
		}
	}
	if h.Count() != 1 || h.Sum() != 42 || h.Max() != 42 || h.Mean() != 42 {
		t.Fatalf("count=%d sum=%d max=%d mean=%d", h.Count(), h.Sum(), h.Max(), h.Mean())
	}
}

func TestHistogramMerge(t *testing.T) {
	// Merging differently-populated histograms must behave exactly as
	// if one histogram had observed both value streams.
	var a, b, both Histogram
	for _, v := range []uint64{0, 3, 9} {
		a.Observe(v)
		both.Observe(v)
	}
	for _, v := range []uint64{512, 513} {
		b.Observe(v)
		both.Observe(v)
	}
	a.Merge(&b)
	if a.counts != both.counts {
		t.Fatalf("merged counts = %v, want %v", a.counts, both.counts)
	}
	if a.Count() != both.Count() || a.Sum() != both.Sum() || a.Max() != both.Max() {
		t.Fatalf("merged count/sum/max = %d/%d/%d, want %d/%d/%d",
			a.Count(), a.Sum(), a.Max(), both.Count(), both.Sum(), both.Max())
	}
	for _, q := range []float64{0.5, 0.9, 1} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Fatalf("merged Quantile(%v) = %d, want %d", q, a.Quantile(q), both.Quantile(q))
		}
	}
}

func TestHistogramMergeEmptyAndNil(t *testing.T) {
	var h Histogram
	h.Observe(7)
	h.Merge(nil)          // nil: no-op
	h.Merge(&Histogram{}) // empty: no-op
	if h.Count() != 1 || h.Sum() != 7 || h.Max() != 7 {
		t.Fatalf("after no-op merges: count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	// Merging into an empty histogram adopts the other's contents.
	var dst Histogram
	dst.Merge(&h)
	if dst.Count() != 1 || dst.Max() != 7 || dst.Quantile(1) != 7 {
		t.Fatalf("merge into empty: count=%d max=%d p100=%d", dst.Count(), dst.Max(), dst.Quantile(1))
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	// Empty histogram: every quantile is 0.
	var empty Histogram
	for _, q := range []float64{0.001, 0.5, 0.999, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}

	// Single sample: every quantile lands in its bucket.
	var one Histogram
	one.Observe(100) // bucket 7: [64, 128)
	for _, q := range []float64{0.001, 0.5, 0.999, 1} {
		if got := one.Quantile(q); got != 127 {
			t.Fatalf("single-sample Quantile(%v) = %d, want 127", q, got)
		}
	}

	// Zero-only: bucket 0 is exactly {0}.
	var zeros Histogram
	zeros.Observe(0)
	zeros.Observe(0)
	if got := zeros.Quantile(0.999); got != 0 {
		t.Fatalf("zeros Quantile(0.999) = %d, want 0", got)
	}

	// Overflow bucket: values with the top bit set land in bucket 64,
	// whose upper bound saturates at ^uint64(0).
	var ovf Histogram
	ovf.Observe(1 << 63)
	if got := ovf.Quantile(0.999); got != ^uint64(0) {
		t.Fatalf("overflow Quantile(0.999) = %d, want max uint64", got)
	}

	// Sparse two-bucket histogram at the exact q=0.999 rank boundary:
	// 999 small values and 1 huge one. rank = ceil(0.999*1000) = 999,
	// still inside the small bucket; one more small value pushes the
	// q=0.999 rank past it only when the tail sample is included.
	var sparse Histogram
	for i := 0; i < 999; i++ {
		sparse.Observe(3) // bucket 2: [2, 4)
	}
	sparse.Observe(1 << 40) // bucket 41
	if got := sparse.Quantile(0.999); got != 3 {
		t.Fatalf("sparse Quantile(0.999) = %d, want 3 (rank 999 of 1000)", got)
	}
	if got := sparse.Quantile(1); got != 1<<41-1 {
		t.Fatalf("sparse Quantile(1) = %d, want %d", got, uint64(1<<41-1))
	}

	// Exact boundary the other way: 1000 samples where rank 999 IS the
	// tail bucket (998 small + 2 large → ceil(0.999*1000)=999 > 998).
	var edge Histogram
	for i := 0; i < 998; i++ {
		edge.Observe(3)
	}
	edge.Observe(1 << 40)
	edge.Observe(1 << 40)
	if got := edge.Quantile(0.999); got != 1<<41-1 {
		t.Fatalf("edge Quantile(0.999) = %d, want tail bucket upper", got)
	}
}
