package obs

import (
	"bytes"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not all-zero: count=%d mean=%d max=%d p50=%d",
			h.Count(), h.Mean(), h.Max(), h.Quantile(0.5))
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Bucket 0 is exactly {0}; bucket i covers [2^(i-1), 2^i).
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8} {
		h.Observe(v)
	}
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1}
	for i, c := range h.counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Count() != 7 || h.Sum() != 25 || h.Max() != 8 || h.Mean() != 3 {
		t.Fatalf("count=%d sum=%d max=%d mean=%d", h.Count(), h.Sum(), h.Max(), h.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 10 values: one in bucket 1 (1), eight in bucket 4 (8..15), one in
	// bucket 7 (64). Quantiles return bucket upper bounds.
	h.Observe(1)
	for i := 0; i < 8; i++ {
		h.Observe(8)
	}
	h.Observe(64)
	cases := []struct {
		q    float64
		want uint64
	}{
		{0.10, 1},   // rank 1 -> bucket 1, upper 1
		{0.11, 15},  // rank 2 (ceil) -> bucket 4, upper 15
		{0.50, 15},  // rank 5
		{0.90, 15},  // rank 9
		{0.91, 127}, // rank 10 -> bucket 7, upper 127
		{1.00, 127},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestHistogramMaxValue(t *testing.T) {
	var h Histogram
	h.Observe(^uint64(0))
	if got := h.Quantile(1.0); got != ^uint64(0) {
		t.Fatalf("Quantile(1.0) of MaxUint64 = %d", got)
	}
}

func TestWriteCSVGolden(t *testing.T) {
	tr := New(Options{})
	for _, v := range []uint64{3, 90, 700} {
		tr.Hist(HSyscallRTT).Observe(v)
	}
	tr.Hist(HMsgLatency).Observe(12)
	tr.Hist(HXfer).Observe(513)
	tr.Hist(HLinkOcc).Observe(0)
	// HSvcCall left empty on purpose: empty rows must render all-zero.
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr.Histograms()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "hist.csv", buf.Bytes())
}
