package obs

import (
	"strings"
	"testing"
)

func TestEncodedSize(t *testing.T) {
	ev := Event{At: 1, PE: 2, Layer: LDTU, Kind: EvMsgSend, Span: 3, Arg0: 4, Arg1: 5, Arg2: 6}
	b := ev.AppendBinary(nil)
	if len(b) != EncodedSize {
		t.Fatalf("AppendBinary produced %d bytes, want EncodedSize=%d", len(b), EncodedSize)
	}
	// Byte-identical for identical events: the determinism witness
	// depends on it.
	if got := string(ev.AppendBinary(nil)); got != string(b) {
		t.Fatalf("AppendBinary not deterministic")
	}
	if got := string(Event{At: 1, PE: 2, Layer: LDTU, Kind: EvMsgRecv, Span: 3, Arg0: 4, Arg1: 5, Arg2: 6}.AppendBinary(nil)); got == string(b) {
		t.Fatalf("different events encoded identically")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.On() {
		t.Fatalf("nil tracer reports On")
	}
	if tr.FlightRecording() {
		t.Fatalf("nil tracer reports FlightRecording")
	}
	tr.Emit(Event{Kind: EvCrash}) // must not panic
	if d := tr.FlightDump(); !strings.Contains(d, "not armed") {
		t.Fatalf("nil tracer dump = %q, want 'not armed'", d)
	}
}

func TestSetEnabledGatesSink(t *testing.T) {
	var got int
	tr := New(Options{Sink: func(Event) { got++ }})
	tr.Emit(Event{Kind: EvMsgSend})
	tr.SetEnabled(false)
	if tr.On() {
		t.Fatalf("disabled tracer reports On")
	}
	tr.Emit(Event{Kind: EvMsgSend})
	tr.SetEnabled(true)
	tr.Emit(Event{Kind: EvMsgSend})
	if got != 2 {
		t.Fatalf("sink saw %d events, want 2 (middle emit disabled)", got)
	}
}

func TestNewSpanSequential(t *testing.T) {
	tr := New(Options{})
	if a, b := tr.NewSpan(), tr.NewSpan(); a != 1 || b != 2 {
		t.Fatalf("NewSpan sequence = %d, %d, want 1, 2", a, b)
	}
}

func TestFlightRingWraps(t *testing.T) {
	tr := New(Options{FlightRecorder: 4})
	if !tr.FlightRecording() {
		t.Fatalf("armed recorder reports not recording")
	}
	for i := 0; i < 6; i++ {
		tr.Emit(Event{PE: 1, Kind: EvMsgSend, Arg0: uint64(i)})
	}
	tr.Emit(Event{At: 5, PE: 3, Kind: EvCrash})
	r := tr.ring(1)
	evs := r.events()
	if len(evs) != 4 || r.total != 6 {
		t.Fatalf("ring retained %d events (total %d), want 4 (total 6)", len(evs), r.total)
	}
	for i, ev := range evs {
		if ev.Arg0 != uint64(i+2) {
			t.Fatalf("ring[%d].Arg0 = %d, want %d (oldest-first after wrap)", i, ev.Arg0, i+2)
		}
	}
	dump := tr.FlightDump()
	if !strings.Contains(dump, "last 4 events per PE") ||
		!strings.Contains(dump, "pe 1 (6 events total):") ||
		!strings.Contains(dump, "pe 3 (1 events total):") {
		t.Fatalf("unexpected dump:\n%s", dump)
	}
	// PE sections appear in id order.
	if strings.Index(dump, "pe 1 ") > strings.Index(dump, "pe 3 ") {
		t.Fatalf("dump not in PE id order:\n%s", dump)
	}
}

func TestFlightRingIgnoresNegativePE(t *testing.T) {
	tr := New(Options{FlightRecorder: 2})
	tr.Emit(Event{PE: -1, Kind: EvConfig})
	if len(tr.rings) != 0 {
		t.Fatalf("event with PE=-1 allocated a ring")
	}
}
