package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s differs from golden (run with -update after verifying)\ngot:\n%s", name, got)
	}
}

// sampleEvents is one syscall's path through the layers, plus an
// unpaired open, a span-0 packet, and a fault instant — every pairing
// rule exercised once.
func sampleEvents() []Event {
	return []Event{
		{At: 100, PE: 2, Layer: LApp, Kind: EvSyscallStart, Span: 1, Arg0: 7},
		{At: 110, PE: 2, Layer: LDTU, Kind: EvMsgSend, Span: 1, Arg0: 0, Arg1: 0, Arg2: 32},
		{At: 112, PE: 2, Layer: LNoC, Kind: EvPktInject, Span: 1, Arg0: 0, Arg1: 48},
		{At: 130, PE: 0, Layer: LNoC, Kind: EvPktDeliver, Span: 1, Arg0: 2, Arg1: 48},
		{At: 132, PE: 0, Layer: LDTU, Kind: EvMsgRecv, Span: 1, Arg0: 0, Arg1: 32},
		{At: 140, PE: 0, Layer: LKernel, Kind: EvKSyscallStart, Span: 1, Arg0: 7, Arg1: 3},
		{At: 180, PE: 0, Layer: LKernel, Kind: EvKSyscallEnd, Span: 1, Arg1: 3},
		{At: 185, PE: 0, Layer: LDTU, Kind: EvReplySend, Span: 1, Arg0: 0, Arg1: 2, Arg2: 16},
		{At: 210, PE: 2, Layer: LDTU, Kind: EvMsgRecv, Span: 1, Arg0: 1, Arg1: 16},
		{At: 215, PE: 2, Layer: LApp, Kind: EvSyscallEnd, Span: 1},
		// Span-0 packet: control traffic, never a flight interval.
		{At: 220, PE: 1, Layer: LNoC, Kind: EvPktInject, Span: 0, Arg0: 3},
		// A start that never ends must surface as an instant.
		{At: 230, PE: 2, Layer: LApp, Kind: EvXferStart, Span: 2, Arg0: 1, Arg1: 4096},
		// A fault verdict is always an instant.
		{At: 240, PE: 1, Layer: LNoC, Kind: EvPktDrop, Span: 3, Arg0: 0, Arg1: 9},
	}
}

func TestIntervals(t *testing.T) {
	intervals, instants := Intervals(sampleEvents())
	// Closing order: ksyscall (140-180), msg flight out (110-132),
	// pkt flight (112-130)... actually flights close at their arrival
	// events: pkt at 130, msg at 132, ksyscall at 180, reply flight at
	// 210, syscall at 215.
	if len(intervals) != 5 {
		t.Fatalf("got %d intervals, want 5: %+v", len(intervals), intervals)
	}
	wantKinds := []Kind{EvPktInject, EvMsgSend, EvKSyscallStart, EvReplySend, EvSyscallStart}
	for i, iv := range intervals {
		if iv.Kind != wantKinds[i] {
			t.Fatalf("interval %d kind = %s, want %s", i, iv.Kind, wantKinds[i])
		}
	}
	// The syscall interval nests everything: 100..215 on PE 2.
	sc := intervals[4]
	if sc.Start != 100 || sc.End != 215 || sc.PE != 2 || sc.Span != 1 {
		t.Fatalf("syscall interval = %+v", sc)
	}
	// The kernel-side interval nests inside it.
	ks := intervals[2]
	if ks.Start < sc.Start || ks.End > sc.End || ks.Span != sc.Span {
		t.Fatalf("ksyscall interval %+v not nested in syscall %+v", ks, sc)
	}
	// Instants: span-0 inject, unclosed xfer, drop.
	if len(instants) != 3 {
		t.Fatalf("got %d instants, want 3: %+v", len(instants), instants)
	}
	wantInstants := []Kind{EvPktInject, EvPktDrop, EvXferStart}
	for i, ev := range instants {
		if ev.Kind != wantInstants[i] {
			t.Fatalf("instant %d kind = %s, want %s", i, ev.Kind, wantInstants[i])
		}
	}
}

func TestIntervalsEndWithoutStart(t *testing.T) {
	intervals, instants := Intervals([]Event{
		{At: 10, PE: 0, Layer: LKernel, Kind: EvKSyscallEnd, Span: 5},
	})
	if len(intervals) != 0 || len(instants) != 1 {
		t.Fatalf("unmatched end: %d intervals, %d instants", len(intervals), len(instants))
	}
}

func TestWritePerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	// The output must be valid Chrome-trace JSON: a traceEvents array
	// whose records all carry the required fields.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 8 {
		t.Fatalf("got %d traceEvents, want 8 (5 intervals + 3 instants)", len(parsed.TraceEvents))
	}
	for i, ev := range parsed.TraceEvents {
		for _, f := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[f]; !ok {
				t.Fatalf("traceEvents[%d] missing %q: %v", i, f, ev)
			}
		}
		if ph := ev["ph"]; ph != "X" && ph != "i" {
			t.Fatalf("traceEvents[%d] ph = %v", i, ph)
		}
		if ev["ph"] == "X" {
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("traceEvents[%d] complete event missing dur", i)
			}
		}
	}
	checkGolden(t, "perfetto.json", buf.Bytes())
}

func TestWritePerfettoDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WritePerfetto(&a, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	if err := WritePerfetto(&b, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two exports of the same stream differ")
	}
}
