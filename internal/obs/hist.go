package obs

import (
	"fmt"
	"io"
	"math/bits"
)

// HistID names one of the tracer's fixed latency histograms.
type HistID int

// The tracer's histograms. The set is fixed so every run reports the
// same tables in the same order.
const (
	// HSyscallRTT is the application-observed syscall round-trip.
	HSyscallRTT HistID = iota
	// HMsgLatency is the DTU message latency: send initiation to
	// ringbuffer arrival.
	HMsgLatency
	// HXfer is the RDMA transfer time (ReadMem/WriteMem completion).
	HXfer
	// HLinkOcc is the per-link NoC occupancy one packet hop causes
	// (router latency + serialization).
	HLinkOcc
	// HSvcCall is the kernel→service control-call round-trip.
	HSvcCall
	NumHists
)

var histNames = [NumHists]string{
	"syscall_rtt", "msg_latency", "xfer_rtt", "link_occupancy", "svc_call_rtt",
}

func (id HistID) String() string {
	if int(id) < len(histNames) {
		return histNames[id]
	}
	return fmt.Sprintf("hist%d", int(id))
}

// Histogram is a deterministic fixed-bucket latency histogram: bucket
// i holds values whose bit length is i (powers of two), so bucketing
// needs no float math and two runs observing the same values render
// byte-identical tables. Observing is O(1) and allocation-free.
type Histogram struct {
	Name string

	// counts[i] holds values v with bits.Len64(v) == i: bucket 0 is
	// exactly {0}, bucket i covers [2^(i-1), 2^i).
	//m3vet:resolve sharedstate owner buckets are bumped on Observe in the observing simulation context only
	counts [65]uint64
	//m3vet:resolve sharedstate owner observation count is bumped on Observe only
	n uint64
	//m3vet:resolve sharedstate owner running sum is bumped on Observe only
	sum uint64
	//m3vet:resolve sharedstate owner running max is updated on Observe only
	max uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.counts[bits.Len64(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest observed value.
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the integer mean of the observed values.
func (h *Histogram) Mean() uint64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / h.n
}

// Merge folds other's observations into h, as if every value other saw
// had been observed on h too. The bucket layout is fixed, so merging is
// a plain component-wise add and stays deterministic regardless of the
// order histograms are merged in.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// bucketUpper is the largest value bucket i can hold.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q <= 1) of the observed values, 0 when empty. The
// result is a deterministic upper estimate: percentile tables are
// stable run-to-run because only integer counts are compared.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	// rank = ceil(q * n), clamped to [1, n].
	rank := uint64(q * float64(h.n))
	if float64(rank) < q*float64(h.n) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return h.max
}

// WriteCSV renders the histograms as a CSV summary table, one row per
// histogram, in the given order.
func WriteCSV(w io.Writer, hists []*Histogram) error {
	if _, err := fmt.Fprintln(w, "hist,count,mean,p50,p90,p99,max"); err != nil {
		return err
	}
	for _, h := range hists {
		_, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d\n",
			h.Name, h.Count(), h.Mean(),
			h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max())
		if err != nil {
			return err
		}
	}
	return nil
}
