package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// The streaming cycle-attribution profiler. It consumes the structured
// event stream — Consume is a valid Options.Sink, so profiling adds no
// new hot-path hooks — and aggregates simulated cycles per (PE, layer,
// span-kind) call path:
//
//	pe2;app/syscall                 self-cycles of the app-side syscall
//	pe2;app/syscall;dtu/flight      message flight time inside it
//	pe0;kernel/ksyscall             kernel-side handling
//
// A frame's self time is its duration minus the durations of frames
// and flights nested inside it, so summing every line under a prefix
// reproduces the prefix's total — the folded-stack invariant
// flamegraph tools expect (flamegraph.pl, speedscope, inferno).
//
// Pairing follows Intervals: same-PE kinds (syscall, ksyscall,
// svccall, xfer) nest on a per-PE frame stack; message flights
// (EvMsgSend/EvReplySend → EvMsgRecv, FIFO per span) attach as a leaf
// under the sender's frame that was open at send time. Packet flights
// are skipped: they run inside message flights and would double-count.
// Frames still open when the stream ends (parked daemons, crashed
// programs) are dropped — attribution only ever counts closed work.

// profFrame is one open frame on a PE's stack.
type profFrame struct {
	kind   Kind
	span   SpanID
	start  sim.Time
	//m3vet:resolve sharedstate owner child cycles accumulate while the frame's PE consumes its own events
	child uint64 // cycles attributed to nested frames and flights
	path  string // full folded path, "pe<N>;layer/kind;..."
	//m3vet:resolve sharedstate owner close flag is set by the consuming context only
	closed bool
}

// profFlight is one in-flight message awaiting its EvMsgRecv.
type profFlight struct {
	at     sim.Time
	path   string
	parent *profFrame // sender frame open at send time (nil: top level)
}

// Profiler aggregates self-cycles per folded call path.
type Profiler struct {
	//m3vet:resolve sharedstate owner per-PE stacks are mutated by the consuming context only
	stacks map[int32][]*profFrame
	//m3vet:resolve sharedstate owner flight lists are mutated by the consuming context only
	flights map[SpanID][]profFlight
	//m3vet:resolve sharedstate owner cycle totals accumulate in the consuming context only
	cycles map[string]uint64
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{
		stacks:  make(map[int32][]*profFrame),
		flights: make(map[SpanID][]profFlight),
		cycles:  make(map[string]uint64),
	}
}

// flightLabel is the folded-path leaf for a message flight.
const flightLabel = "dtu/flight"

// peRoot is the root path element of a PE's stacks.
func peRoot(pe int32) string { return fmt.Sprintf("pe%d", pe) }

// top returns the innermost open frame on pe's stack, or nil.
func (pr *Profiler) top(pe int32) *profFrame {
	st := pr.stacks[pe]
	if len(st) == 0 {
		return nil
	}
	return st[len(st)-1]
}

// Consume feeds one event. Pass it as Options.Sink (or call it from an
// existing sink) and read the aggregate after the run.
func (pr *Profiler) Consume(ev Event) {
	switch ev.Kind {
	case EvSyscallStart, EvKSyscallStart, EvSvcCallStart, EvXferStart:
		parent := peRoot(ev.PE)
		if t := pr.top(ev.PE); t != nil {
			parent = t.path
		}
		pr.stacks[ev.PE] = append(pr.stacks[ev.PE], &profFrame{
			kind: ev.Kind, span: ev.Span, start: ev.At,
			path: parent + ";" + ev.Layer.String() + "/" + ev.Kind.String(),
		})
	case EvSyscallEnd, EvKSyscallEnd, EvSvcCallEnd, EvXferEnd:
		pr.close(ev)
	case EvMsgSend, EvReplySend:
		if ev.Span == 0 {
			return
		}
		path := peRoot(ev.PE)
		parent := pr.top(ev.PE)
		if parent != nil {
			path = parent.path
		}
		pr.flights[ev.Span] = append(pr.flights[ev.Span], profFlight{
			at: ev.At, path: path + ";" + flightLabel, parent: parent,
		})
	case EvMsgRecv:
		if ev.Span == 0 {
			return
		}
		q := pr.flights[ev.Span]
		if len(q) == 0 {
			return
		}
		fl := q[0]
		pr.flights[ev.Span] = q[1:]
		if len(pr.flights[ev.Span]) == 0 {
			delete(pr.flights, ev.Span)
		}
		dur := uint64(ev.At - fl.at)
		pr.cycles[fl.path] += dur
		// Only a still-open sender frame can absorb the flight into its
		// child time; a closed frame's accounting is final.
		if fl.parent != nil && !fl.parent.closed {
			fl.parent.child += dur
		}
	}
}

// close pops the frame the end event matches — same opening kind and
// span — attributing its self time. A crash can kill a program between
// start and end events: frames stacked above the match never got their
// end and are discarded unattributed.
func (pr *Profiler) close(ev Event) {
	open := endOf[ev.Kind]
	st := pr.stacks[ev.PE]
	for i := len(st) - 1; i >= 0; i-- {
		fr := st[i]
		if fr.kind != open || fr.span != ev.Span {
			continue
		}
		for _, dead := range st[i+1:] {
			dead.closed = true
		}
		pr.stacks[ev.PE] = st[:i]
		fr.closed = true
		total := uint64(ev.At - fr.start)
		self := total
		if fr.child < self {
			self -= fr.child
		} else {
			self = 0
		}
		pr.cycles[fr.path] += self
		if i > 0 {
			st[i-1].child += total
		}
		return
	}
}

// PathCycles is one folded-stack line.
type PathCycles struct {
	Path   string
	Cycles uint64
}

// Folded returns every (path, self-cycles) pair sorted by path — the
// deterministic aggregate of the run.
func (pr *Profiler) Folded() []PathCycles {
	var paths []string
	for p := range pr.cycles {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]PathCycles, 0, len(paths))
	for _, p := range paths {
		out = append(out, PathCycles{Path: p, Cycles: pr.cycles[p]})
	}
	return out
}

// WriteFolded renders the aggregate in folded-stack format — one
// "path cycles" line, ';'-separated frames — directly consumable by
// flamegraph.pl, inferno, or speedscope.
func (pr *Profiler) WriteFolded(w io.Writer) error {
	for _, pc := range pr.Folded() {
		if _, err := fmt.Fprintf(w, "%s %d\n", pc.Path, pc.Cycles); err != nil {
			return err
		}
	}
	return nil
}

// Top returns the n paths with the most self-cycles, largest first
// (ties broken by path for determinism).
func (pr *Profiler) Top(n int) []PathCycles {
	all := pr.Folded()
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Cycles != all[j].Cycles {
			return all[i].Cycles > all[j].Cycles
		}
		return all[i].Path < all[j].Path
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// TotalByPE sums attributed self-cycles per PE root, for the
// utilization table. The result is sorted by PE id.
func (pr *Profiler) TotalByPE() []PathCycles {
	byPE := make(map[string]uint64)
	for _, pc := range pr.Folded() {
		root, _, _ := strings.Cut(pc.Path, ";")
		byPE[root] += pc.Cycles
	}
	var roots []string
	for r := range byPE {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		// Numeric order: "pe2" before "pe10".
		a, b := roots[i], roots[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	out := make([]PathCycles, 0, len(roots))
	for _, r := range roots {
		out = append(out, PathCycles{Path: r, Cycles: byPE[r]})
	}
	return out
}
