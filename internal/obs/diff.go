package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// The differential-observability engine: align two run captures
// (capture.go) and attribute their cycle delta. The output answers the
// question a red bench gate raises — *where* did the regression go —
// in four complementary views:
//
//   - profile deltas per (PE, layer, kind) leaf frame, each with its
//     top-k contributing span paths, plus per-layer rollups;
//   - per-bucket histogram shift with p50/p90/p99 quantile deltas;
//   - blame-category drift (app/queue/noc/kernel/retry/shed share of
//     end-to-end latency, the critical-path view);
//   - metric-by-metric deltas (changed, added, removed).
//
// Every slice in a CaptureDiff is sorted by a deterministic rule, so
// rendering — text, JSON, or folded flamegraph-diff — is byte-stable:
// diffing the same two captures always produces the same bytes, and a
// self-comparison renders as exactly "no drift".

// DiffQuantiles are the quantiles every histogram shift reports.
var DiffQuantiles = []float64{0.50, 0.90, 0.99}

// PathDelta is one folded span path's self-cycle change.
type PathDelta struct {
	Path string `json:"path"`
	Old  uint64 `json:"old"`
	New  uint64 `json:"new"`
}

// Delta returns new-old as a signed difference.
func (p PathDelta) Delta() int64 { return int64(p.New) - int64(p.Old) }

// GroupDelta aggregates the profile delta of one (PE, layer, kind)
// leaf frame — e.g. every path ending in kernel/ksyscall on pe0 — with
// the top-k span paths contributing to the change.
type GroupDelta struct {
	PE    string `json:"pe"`
	Layer string `json:"layer"`
	Kind  string `json:"kind"`
	Old   uint64 `json:"old"`
	New   uint64 `json:"new"`
	// Paths are the group's contributing span paths, largest absolute
	// delta first (ties by path), truncated to the diff's top-k.
	Paths []PathDelta `json:"paths,omitempty"`
}

// Delta returns new-old.
func (g GroupDelta) Delta() int64 { return int64(g.New) - int64(g.Old) }

// LayerDelta rolls a profile delta up to one architectural layer
// across all PEs and kinds.
type LayerDelta struct {
	Layer string `json:"layer"`
	Old   uint64 `json:"old"`
	New   uint64 `json:"new"`
}

// Delta returns new-old.
func (l LayerDelta) Delta() int64 { return int64(l.New) - int64(l.Old) }

// QuantileDelta is one histogram quantile's shift.
type QuantileDelta struct {
	Q   float64 `json:"q"`
	Old uint64  `json:"old"`
	New uint64  `json:"new"`
}

// BucketDelta is one histogram bucket whose count changed. Bit is the
// power-of-two bucket index (see Histogram).
type BucketDelta struct {
	Bit int    `json:"bit"`
	Old uint64 `json:"old"`
	New uint64 `json:"new"`
}

// HistDelta is the shift of one latency histogram.
type HistDelta struct {
	Name      string          `json:"name"`
	OldCount  uint64          `json:"old_count"`
	NewCount  uint64          `json:"new_count"`
	OldMean   uint64          `json:"old_mean"`
	NewMean   uint64          `json:"new_mean"`
	OldMax    uint64          `json:"old_max"`
	NewMax    uint64          `json:"new_max"`
	Quantiles []QuantileDelta `json:"quantiles,omitempty"`
	Buckets   []BucketDelta   `json:"buckets,omitempty"`
}

// Changed reports whether anything about the histogram moved.
func (h HistDelta) Changed() bool {
	if h.OldCount != h.NewCount || h.OldMean != h.NewMean || h.OldMax != h.NewMax {
		return true
	}
	return len(h.Buckets) > 0
}

// BlameDelta is one blame category's drift: absolute cycles and the
// category's share of the total end-to-end latency.
type BlameDelta struct {
	Category string  `json:"category"`
	Old      uint64  `json:"old"`
	New      uint64  `json:"new"`
	OldShare float64 `json:"old_share"`
	NewShare float64 `json:"new_share"`
}

// Delta returns new-old.
func (b BlameDelta) Delta() int64 { return int64(b.New) - int64(b.Old) }

// Metric delta statuses.
const (
	MetricChanged = "changed"
	MetricAdded   = "added"
	MetricRemoved = "removed"
)

// MetricDelta is one registry metric's change. Only changed, added,
// and removed metrics are retained — equal values are silent, so a
// self-diff has no metric section.
type MetricDelta struct {
	Name   string `json:"name"` // rendered name, "[idx]" suffix for vectors
	Status string `json:"status"`
	Old    int64  `json:"old"`
	New    int64  `json:"new"`
}

// CaptureDiff is the full attribution of the delta between two
// captures of the same workload.
type CaptureDiff struct {
	Workload string `json:"workload"`
	// OldTotal/NewTotal are the total attributed profile self-cycles.
	OldTotal uint64 `json:"old_total"`
	NewTotal uint64 `json:"new_total"`
	// Groups lists every (PE, layer, kind) whose self-cycles moved,
	// largest absolute delta first.
	Groups []GroupDelta `json:"groups,omitempty"`
	// Layers is the per-layer rollup over all groups (including layers
	// whose total did not move, when any group under them did).
	Layers []LayerDelta `json:"layers,omitempty"`
	// Hists lists every histogram that shifted.
	Hists []HistDelta `json:"hists,omitempty"`
	// Blame is the full blame-category drift table (all categories,
	// category order) — present whenever either capture completed
	// requests and any category moved.
	Blame []BlameDelta `json:"blame,omitempty"`
	// BlameCompleted* carry the request counts behind the drift table.
	OldCompleted uint64 `json:"old_completed"`
	NewCompleted uint64 `json:"new_completed"`
	// Metrics lists changed/added/removed metrics in name order.
	Metrics []MetricDelta `json:"metrics,omitempty"`
}

// DiffTopPaths caps the per-group contributor list.
const DiffTopPaths = 3

// pathLeaf splits a folded path into its PE root and the layer/kind of
// its leaf frame. Paths without a frame ("pe0" alone) report empty
// layer and kind.
func pathLeaf(path string) (pe, layer, kind string) {
	elems := strings.Split(path, ";")
	pe = elems[0]
	if len(elems) < 2 {
		return pe, "", ""
	}
	leaf := elems[len(elems)-1]
	layer, kind, _ = strings.Cut(leaf, "/")
	return pe, layer, kind
}

// DiffCaptures aligns two captures and attributes their delta. It
// refuses mismatched schema versions and mismatched workloads: a diff
// of unrelated runs attributes nothing.
func DiffCaptures(old, new *RunCapture) (*CaptureDiff, error) {
	if old == nil || new == nil {
		return nil, fmt.Errorf("obs: diff of nil capture")
	}
	if old.Schema != CaptureSchema || new.Schema != CaptureSchema {
		return nil, fmt.Errorf("obs: capture schema mismatch: old %d, new %d, this binary speaks %d",
			old.Schema, new.Schema, CaptureSchema)
	}
	if old.Workload != new.Workload {
		return nil, fmt.Errorf("obs: capture workload mismatch: old %q, new %q", old.Workload, new.Workload)
	}
	d := &CaptureDiff{Workload: old.Workload}
	d.diffProfile(old, new)
	d.diffHists(old, new)
	d.diffBlame(old, new)
	d.diffMetrics(old, new)
	return d, nil
}

// diffProfile builds the group, layer, and path deltas.
func (d *CaptureDiff) diffProfile(old, new *RunCapture) {
	type cyc struct{ old, new uint64 }
	paths := map[string]*cyc{}
	var order []string
	touch := func(p string) *cyc {
		c, ok := paths[p]
		if !ok {
			c = &cyc{}
			paths[p] = c
			order = append(order, p)
		}
		return c
	}
	for _, pc := range old.Profile {
		touch(pc.Path).old += pc.Cycles
		d.OldTotal += pc.Cycles
	}
	for _, pc := range new.Profile {
		touch(pc.Path).new += pc.Cycles
		d.NewTotal += pc.Cycles
	}
	sort.Strings(order)

	type gkey struct{ pe, layer, kind string }
	groups := map[gkey]*GroupDelta{}
	var gorder []gkey
	layers := map[string]*LayerDelta{}
	var lorder []string
	for _, p := range order {
		c := paths[p]
		pe, layer, kind := pathLeaf(p)
		gk := gkey{pe, layer, kind}
		g, ok := groups[gk]
		if !ok {
			g = &GroupDelta{PE: pe, Layer: layer, Kind: kind}
			groups[gk] = g
			gorder = append(gorder, gk)
		}
		g.Old += c.old
		g.New += c.new
		if c.old != c.new {
			g.Paths = append(g.Paths, PathDelta{Path: p, Old: c.old, New: c.new})
		}
		l, ok := layers[layer]
		if !ok {
			l = &LayerDelta{Layer: layer}
			layers[layer] = l
			lorder = append(lorder, layer)
		}
		l.Old += c.old
		l.New += c.new
	}
	for _, gk := range gorder {
		g := groups[gk]
		if g.Delta() == 0 && len(g.Paths) == 0 {
			continue
		}
		sort.SliceStable(g.Paths, func(i, j int) bool {
			di, dj := abs64(g.Paths[i].Delta()), abs64(g.Paths[j].Delta())
			if di != dj {
				return di > dj
			}
			return g.Paths[i].Path < g.Paths[j].Path
		})
		if len(g.Paths) > DiffTopPaths {
			g.Paths = g.Paths[:DiffTopPaths]
		}
		d.Groups = append(d.Groups, *g)
	}
	sort.SliceStable(d.Groups, func(i, j int) bool {
		di, dj := abs64(d.Groups[i].Delta()), abs64(d.Groups[j].Delta())
		if di != dj {
			return di > dj
		}
		gi, gj := d.Groups[i], d.Groups[j]
		if gi.PE != gj.PE {
			return gi.PE < gj.PE
		}
		if gi.Layer != gj.Layer {
			return gi.Layer < gj.Layer
		}
		return gi.Kind < gj.Kind
	})
	if len(d.Groups) > 0 {
		for _, l := range lorder {
			d.Layers = append(d.Layers, *layers[l])
		}
		sort.SliceStable(d.Layers, func(i, j int) bool {
			di, dj := d.Layers[i].Delta(), d.Layers[j].Delta()
			if di != dj {
				return di > dj
			}
			return d.Layers[i].Layer < d.Layers[j].Layer
		})
	}
}

// diffHists aligns histograms by name and keeps the ones that shifted.
func (d *CaptureDiff) diffHists(old, new *RunCapture) {
	oldH := map[string]CaptureHist{}
	for _, h := range old.Hists {
		oldH[h.Name] = h
	}
	newH := map[string]CaptureHist{}
	var names []string
	for _, h := range new.Hists {
		newH[h.Name] = h
		names = append(names, h.Name)
	}
	for _, h := range old.Hists {
		if _, ok := newH[h.Name]; !ok {
			names = append(names, h.Name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		o, n := oldH[name], newH[name]
		oh, nh := o.Histogram(), n.Histogram()
		hd := HistDelta{
			Name:     name,
			OldCount: oh.Count(), NewCount: nh.Count(),
			OldMean: oh.Mean(), NewMean: nh.Mean(),
			OldMax: oh.Max(), NewMax: nh.Max(),
		}
		for _, q := range DiffQuantiles {
			hd.Quantiles = append(hd.Quantiles, QuantileDelta{Q: q, Old: oh.Quantile(q), New: nh.Quantile(q)})
		}
		for bit := range oh.counts {
			if oh.counts[bit] != nh.counts[bit] {
				hd.Buckets = append(hd.Buckets, BucketDelta{Bit: bit, Old: oh.counts[bit], New: nh.counts[bit]})
			}
		}
		if hd.Changed() {
			d.Hists = append(d.Hists, hd)
		}
	}
}

// diffBlame builds the category drift table.
func (d *CaptureDiff) diffBlame(old, new *RunCapture) {
	d.OldCompleted = old.Blame.Completed
	d.NewCompleted = new.Blame.Completed
	oldC := map[string]uint64{}
	var oldTotal uint64
	for _, b := range old.Blame.Total {
		oldC[b.Category] += b.Cycles
		oldTotal += b.Cycles
	}
	newC := map[string]uint64{}
	var newTotal uint64
	var order []string
	for _, b := range new.Blame.Total {
		if _, dup := newC[b.Category]; !dup {
			order = append(order, b.Category)
		}
		newC[b.Category] += b.Cycles
		newTotal += b.Cycles
	}
	for _, b := range old.Blame.Total {
		if _, ok := newC[b.Category]; !ok {
			order = append(order, b.Category)
		}
	}
	moved := false
	var table []BlameDelta
	for _, cat := range order {
		bd := BlameDelta{Category: cat, Old: oldC[cat], New: newC[cat]}
		if oldTotal > 0 {
			bd.OldShare = float64(bd.Old) / float64(oldTotal)
		}
		if newTotal > 0 {
			bd.NewShare = float64(bd.New) / float64(newTotal)
		}
		if bd.Old != bd.New {
			moved = true
		}
		table = append(table, bd)
	}
	if moved {
		d.Blame = table
	}
}

// diffMetrics aligns registry metrics by (name, idx).
func (d *CaptureDiff) diffMetrics(old, new *RunCapture) {
	key := func(m CaptureMetric) string {
		if m.Idx >= 0 {
			return fmt.Sprintf("%s[%d]", m.Name, m.Idx)
		}
		return m.Name
	}
	oldM := map[string]CaptureMetric{}
	for _, m := range old.Metrics {
		oldM[key(m)] = m
	}
	newM := map[string]CaptureMetric{}
	for _, m := range new.Metrics {
		newM[key(m)] = m
	}
	var names []string
	for _, m := range new.Metrics {
		names = append(names, key(m))
	}
	for _, m := range old.Metrics {
		if _, ok := newM[key(m)]; !ok {
			names = append(names, key(m))
		}
	}
	sort.Strings(names)
	for _, name := range names {
		o, hasOld := oldM[name]
		n, hasNew := newM[name]
		switch {
		case hasOld && hasNew:
			if o.Value != n.Value {
				d.Metrics = append(d.Metrics, MetricDelta{Name: name, Status: MetricChanged, Old: o.Value, New: n.Value})
			}
		case hasNew:
			d.Metrics = append(d.Metrics, MetricDelta{Name: name, Status: MetricAdded, New: n.Value})
		default:
			d.Metrics = append(d.Metrics, MetricDelta{Name: name, Status: MetricRemoved, Old: o.Value})
		}
	}
}

// Empty reports whether the two captures were observably identical:
// an empty diff renders as "no drift".
func (d *CaptureDiff) Empty() bool {
	return len(d.Groups) == 0 && len(d.Hists) == 0 && len(d.Blame) == 0 &&
		len(d.Metrics) == 0 && d.OldTotal == d.NewTotal &&
		d.OldCompleted == d.NewCompleted
}

// TopLayer returns the layer with the largest positive profile-cycle
// delta — the first suspect of a regression (false when nothing grew).
func (d *CaptureDiff) TopLayer() (LayerDelta, bool) {
	for _, l := range d.Layers {
		if l.Delta() > 0 {
			return l, true
		}
	}
	return LayerDelta{}, false
}

// TopBlame returns the blame category with the largest positive cycle
// drift — where the added end-to-end latency landed (false when no
// category grew). Categories tie-break in table order.
func (d *CaptureDiff) TopBlame() (BlameDelta, bool) {
	var best BlameDelta
	found := false
	for _, b := range d.Blame {
		if b.Delta() > 0 && (!found || b.Delta() > best.Delta()) {
			best, found = b, true
		}
	}
	return best, found
}

// abs64 is the absolute value of a signed delta.
func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// pct renders a relative change as "+6.2%" ("n/a" on a zero base).
func pct(old, new uint64) string {
	if old == 0 {
		if new == 0 {
			return "+0.0%"
		}
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(new)/float64(old)-1))
}

// signed renders a signed cycle delta with an explicit sign.
func signed(v int64) string { return fmt.Sprintf("%+d", v) }

// Summary renders the diff's headline in one line: total profile
// movement plus the top layer and blame drift.
func (d *CaptureDiff) Summary() string {
	if d.Empty() {
		return fmt.Sprintf("capture %s: no drift", d.Workload)
	}
	s := fmt.Sprintf("capture %s: attributed cycles %d -> %d (%s)",
		d.Workload, d.OldTotal, d.NewTotal, pct(d.OldTotal, d.NewTotal))
	if l, ok := d.TopLayer(); ok {
		s += fmt.Sprintf("; top layer %s %s (%s cycles)", l.Layer, pct(l.Old, l.New), signed(l.Delta()))
	}
	if b, ok := d.TopBlame(); ok {
		s += fmt.Sprintf("; blame %s %.0f%%->%.0f%%", b.Category, 100*b.OldShare, 100*b.NewShare)
	}
	return s
}

// WriteText renders the full deterministic report. topGroups caps the
// group table (0 = all).
func (d *CaptureDiff) WriteText(w io.Writer, topGroups int) error {
	if d.Empty() {
		_, err := fmt.Fprintf(w, "capture %s: no drift\n", d.Workload)
		return err
	}
	pr := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := pr("capture %s: attributed cycles %d -> %d (%s)\n",
		d.Workload, d.OldTotal, d.NewTotal, pct(d.OldTotal, d.NewTotal)); err != nil {
		return err
	}
	if len(d.Layers) > 0 {
		if err := pr("  layer deltas (self-cycles, all PEs):\n"); err != nil {
			return err
		}
		for _, l := range d.Layers {
			if err := pr("    %-8s %10d -> %10d  %8s (%s)\n",
				l.Layer, l.Old, l.New, signed(l.Delta()), pct(l.Old, l.New)); err != nil {
				return err
			}
		}
	}
	groups := d.Groups
	if topGroups > 0 && len(groups) > topGroups {
		groups = groups[:topGroups]
	}
	if len(groups) > 0 {
		if err := pr("  hottest (PE, layer, kind) deltas:\n"); err != nil {
			return err
		}
		for _, g := range groups {
			if err := pr("    %s %s/%s: %d -> %d (%s, %s)\n",
				g.PE, g.Layer, g.Kind, g.Old, g.New, signed(g.Delta()), pct(g.Old, g.New)); err != nil {
				return err
			}
			for _, p := range g.Paths {
				if err := pr("      path %s: %d -> %d (%s)\n", p.Path, p.Old, p.New, signed(p.Delta())); err != nil {
					return err
				}
			}
		}
		if topGroups > 0 && len(d.Groups) > topGroups {
			if err := pr("    ... %d more group(s) suppressed (-top)\n", len(d.Groups)-topGroups); err != nil {
				return err
			}
		}
	}
	for _, h := range d.Hists {
		if err := pr("  hist %s: count %d -> %d, mean %d -> %d, max %d -> %d\n",
			h.Name, h.OldCount, h.NewCount, h.OldMean, h.NewMean, h.OldMax, h.NewMax); err != nil {
			return err
		}
		for _, q := range h.Quantiles {
			if q.Old == q.New {
				continue
			}
			if err := pr("    p%g: %d -> %d (%s)\n", q.Q*100, q.Old, q.New, pct(q.Old, q.New)); err != nil {
				return err
			}
		}
		for _, b := range h.Buckets {
			if err := pr("    bucket 2^%d: %d -> %d\n", b.Bit, b.Old, b.New); err != nil {
				return err
			}
		}
	}
	if len(d.Blame) > 0 {
		if err := pr("  blame drift (%d -> %d completed requests):\n", d.OldCompleted, d.NewCompleted); err != nil {
			return err
		}
		for _, b := range d.Blame {
			if err := pr("    %-8s %10d -> %10d  %8s  share %.1f%% -> %.1f%%\n",
				b.Category, b.Old, b.New, signed(b.Delta()), 100*b.OldShare, 100*b.NewShare); err != nil {
				return err
			}
		}
	}
	for _, m := range d.Metrics {
		switch m.Status {
		case MetricChanged:
			if err := pr("  metric %s: %d -> %d (%s)\n", m.Name, m.Old, m.New, signed(m.New-m.Old)); err != nil {
				return err
			}
		case MetricAdded:
			if err := pr("  metric %s: added (%d)\n", m.Name, m.New); err != nil {
				return err
			}
		case MetricRemoved:
			if err := pr("  metric %s: removed (was %d)\n", m.Name, m.Old); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the diff as indented JSON with a trailing newline.
func (d *CaptureDiff) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFoldedDiff renders the two profiles in flamegraph difffolded
// format — one "path old new" line per path in the union, sorted by
// path — directly consumable by flamegraph.pl --negate / difffolded.
func WriteFoldedDiff(w io.Writer, old, new *RunCapture) error {
	cycles := func(c *RunCapture) map[string]uint64 {
		m := make(map[string]uint64, len(c.Profile))
		for _, pc := range c.Profile {
			m[pc.Path] += pc.Cycles
		}
		return m
	}
	om, nm := cycles(old), cycles(new)
	var paths []string
	for p := range om { //m3vet:allow nodeterminism keys are collected and sorted below before any output
		paths = append(paths, p)
	}
	for p := range nm { //m3vet:allow nodeterminism keys are collected and sorted below before any output
		if _, ok := om[p]; !ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := fmt.Fprintf(w, "%s %d %d\n", p, om[p], nm[p]); err != nil {
			return err
		}
	}
	return nil
}
