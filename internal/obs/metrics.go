package obs

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// The metrics registry: deterministic counters, gauges, and
// sim-clock-sampled time series. It is the aggregate companion to the
// event stream — events answer "what happened at cycle N", metrics
// answer "how much of it happened" without retaining the stream.
//
// Determinism contract. A metric is identified by (name, index); names
// are package-level constants in the instrumented packages (m3vet:
// metricname) and registration order is the deterministic order the
// simulation reaches each site in, so Snapshot renders byte-identical
// output for identical runs. Values carry only simulation-derived
// quantities — never wall-clock time. Sampling is opt-in
// (StartSampler): with it off, the registry schedules no engine events
// at all, so RunStats and every trace stream stay bit-identical to a
// run without metrics. With it on, the sampler reads state but never
// mutates it, so the simulated schedule is unperturbed apart from the
// tick events themselves.
//
// Mutation methods (Inc, Add, Set) sit under the same Tracer.On()
// guard as Emit (m3vet: obsguard): a disabled tracer costs one branch
// per site.

// metricKind discriminates registry entries.
type metricKind uint8

// Registry entry kinds, in snapshot-keyword order.
const (
	KindCounter metricKind = iota
	KindGauge
	KindSeries
)

func (k metricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindSeries:
		return "series"
	}
	return "metric"
}

// Counter is a monotonically increasing counter. The zero value of a
// nil pointer is a valid, permanently inert counter so call sites can
// cache the pointer unconditionally.
type Counter struct {
	//m3vet:resolve sharedstate owner counter value is bumped by the owning simulation context only
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous signed value.
type Gauge struct{ v int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add moves the value by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v += d
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Series is a time series sampled on the simulated clock: every
// sampler tick appends source(). The ring is unbounded in simulation
// terms but bounded in practice by run length / interval.
type Series struct {
	//m3vet:resolve sharedstate owner sample source is set once at registration
	source func() int64
	//m3vet:resolve sharedstate owner samples are appended by the engine-scheduled sampler tick only
	samples []int64
}

// Samples returns the recorded samples, oldest first.
func (s *Series) Samples() []int64 {
	if s == nil {
		return nil
	}
	return s.samples
}

// Last returns the most recent sample (0 before the first tick).
func (s *Series) Last() int64 {
	if s == nil || len(s.samples) == 0 {
		return 0
	}
	return s.samples[len(s.samples)-1]
}

// metricKey identifies one registry entry.
type metricKey struct {
	name string
	idx  int
}

// Entry is one registered metric, exposed for deterministic read-side
// iteration (reports, the m3sim -stats table, the bench JSON).
type Entry struct {
	Name string
	// Idx distinguishes instances of a vector metric (a PE id, a link
	// index, a syscall opcode); -1 marks a scalar.
	Idx  int
	Kind metricKind

	//m3vet:resolve sharedstate owner instrument pointers are set once at registration
	c *Counter
	g *Gauge //m3vet:resolve sharedstate owner instrument pointers are set once at registration
	s *Series
}

// Value returns the entry's scalar value (a series reports its last
// sample).
func (e *Entry) Value() int64 {
	switch e.Kind {
	case KindCounter:
		return int64(e.c.Value())
	case KindGauge:
		return e.g.Value()
	case KindSeries:
		return e.s.Last()
	}
	return 0
}

// Samples returns the series samples (nil for counters and gauges).
func (e *Entry) Samples() []int64 {
	if e.Kind != KindSeries {
		return nil
	}
	return e.s.Samples()
}

// Registry holds the metrics of one run in stable registration order.
// Like the Tracer it is engine-local simulation state: no locking, and
// a nil *Registry is valid and permanently inert.
type Registry struct {
	//m3vet:resolve sharedstate owner entry list and index are appended at registration time only
	entries []*Entry
	index   map[metricKey]*Entry //m3vet:resolve sharedstate owner entry list and index are appended at registration time only

	interval sim.Time
	sampling bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[metricKey]*Entry)}
}

// register returns the entry for (name, idx), creating it with the
// given kind on first use. Re-registering with a different kind is a
// programming error and panics: the name constants are the schema.
func (r *Registry) register(name string, idx int, kind metricKind) *Entry {
	k := metricKey{name, idx}
	if e, ok := r.index[k]; ok {
		if e.Kind != kind {
			panic(fmt.Sprintf("obs: metric %s[%d] re-registered as %s (was %s)", name, idx, kind, e.Kind))
		}
		return e
	}
	e := &Entry{Name: name, Idx: idx, Kind: kind}
	switch kind {
	case KindCounter:
		e.c = &Counter{}
	case KindGauge:
		e.g = &Gauge{}
	case KindSeries:
		e.s = &Series{}
	}
	r.index[k] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter returns the counter (name, idx), registering it on first
// use. idx is -1 for a scalar. Nil registries return a nil (inert)
// counter.
func (r *Registry) Counter(name string, idx int) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, idx, KindCounter).c
}

// Gauge returns the gauge (name, idx), registering it on first use.
func (r *Registry) Gauge(name string, idx int) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, idx, KindGauge).g
}

// Series returns the sampled series (name, idx), installing source on
// first registration. The source must be a pure read of simulation
// state: it runs inside sampler ticks and must not schedule events or
// mutate anything.
func (r *Registry) Series(name string, idx int, source func() int64) *Series {
	if r == nil {
		return nil
	}
	e := r.register(name, idx, KindSeries)
	if e.s.source == nil {
		e.s.source = source
	}
	return e.s
}

// Entries returns all metrics in registration order.
func (r *Registry) Entries() []*Entry {
	if r == nil {
		return nil
	}
	return r.entries
}

// Interval returns the sampler interval (0 when sampling is off).
func (r *Registry) Interval() sim.Time {
	if r == nil {
		return 0
	}
	return r.interval
}

// StartSampler schedules the recurring sampling tick on eng: every
// `every` cycles each registered series appends one sample, in
// registration order. The tick stops rescheduling itself once the
// event queue is otherwise empty, so sampling never keeps a finished
// run alive and never schedules onto a deadlocked engine.
func (r *Registry) StartSampler(eng *sim.Engine, every sim.Time) {
	if r == nil || every == 0 || r.sampling {
		return
	}
	r.sampling = true
	r.interval = every
	var tick func()
	tick = func() {
		for _, e := range r.entries {
			if e.Kind == KindSeries && e.s.source != nil {
				e.s.samples = append(e.s.samples, e.s.source())
			}
		}
		if eng.Pending() {
			eng.Schedule(every, tick)
		}
	}
	eng.Schedule(every, tick)
}

// WriteSnapshot renders every metric in registration order as a plain
// deterministic text table:
//
//	# m3 metrics v1 interval=4096
//	counter dtu_credit_stalls_total[2] 17
//	gauge   noc_inflight 3
//	series  bench_pe_idle_cycles[0] n=4: 0 12 40 40
//
// Scalars (idx -1) omit the [idx] suffix. The snapshot is the unit the
// determinism witness hashes.
func (r *Registry) WriteSnapshot(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# m3 metrics v1 interval=%d\n", r.Interval()); err != nil {
		return err
	}
	if r == nil {
		return nil
	}
	for _, e := range r.entries {
		name := e.Name
		if e.Idx >= 0 {
			name = fmt.Sprintf("%s[%d]", e.Name, e.Idx)
		}
		var err error
		if e.Kind == KindSeries {
			var sb strings.Builder
			for _, v := range e.s.Samples() {
				fmt.Fprintf(&sb, " %d", v)
			}
			_, err = fmt.Fprintf(w, "series %s n=%d:%s\n", name, len(e.s.Samples()), sb.String())
		} else {
			_, err = fmt.Fprintf(w, "%s %s %d\n", e.Kind, name, e.Value())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Snapshot renders WriteSnapshot to a string.
func (r *Registry) Snapshot() string {
	var sb strings.Builder
	if err := r.WriteSnapshot(&sb); err != nil {
		panic(err) // strings.Builder never errors
	}
	return sb.String()
}
