package obs

import (
	"strings"
	"testing"
)

// feed pushes a synthetic event stream through a fresh profiler.
func feed(events []Event) *Profiler {
	pr := NewProfiler()
	for _, ev := range events {
		pr.Consume(ev)
	}
	return pr
}

func cyclesOf(pr *Profiler, path string) uint64 {
	for _, pc := range pr.Folded() {
		if pc.Path == path {
			return pc.Cycles
		}
	}
	return 0
}

func TestProfilerSelfTimeSubtractsChildren(t *testing.T) {
	// An app syscall spanning [0,100] with a nested xfer [20,50]:
	// the syscall keeps 70 self-cycles, the xfer 30.
	pr := feed([]Event{
		{At: 0, PE: 2, Layer: LApp, Kind: EvSyscallStart, Span: 1},
		{At: 20, PE: 2, Layer: LDTU, Kind: EvXferStart, Span: 2},
		{At: 50, PE: 2, Layer: LDTU, Kind: EvXferEnd, Span: 2},
		{At: 100, PE: 2, Layer: LApp, Kind: EvSyscallEnd, Span: 1},
	})
	if got := cyclesOf(pr, "pe2;app/syscall"); got != 70 {
		t.Fatalf("syscall self = %d, want 70\n%v", got, pr.Folded())
	}
	if got := cyclesOf(pr, "pe2;app/syscall;dtu/xfer"); got != 30 {
		t.Fatalf("xfer self = %d, want 30\n%v", got, pr.Folded())
	}
}

func TestProfilerFoldedInvariant(t *testing.T) {
	// Summing every line under a root reproduces the root total — the
	// folded-stack invariant flamegraph tools rely on.
	pr := feed([]Event{
		{At: 0, PE: 0, Layer: LKernel, Kind: EvKSyscallStart, Span: 1},
		{At: 10, PE: 0, Layer: LService, Kind: EvSvcCallStart, Span: 2},
		{At: 40, PE: 0, Layer: LService, Kind: EvSvcCallEnd, Span: 2},
		{At: 60, PE: 0, Layer: LKernel, Kind: EvKSyscallEnd, Span: 1},
	})
	var total uint64
	for _, pc := range pr.Folded() {
		if strings.HasPrefix(pc.Path, "pe0;") {
			total += pc.Cycles
		}
	}
	if total != 60 {
		t.Fatalf("sum of pe0 self-cycles = %d, want 60 (outer span duration)", total)
	}
	byPE := pr.TotalByPE()
	if len(byPE) != 1 || byPE[0].Path != "pe0" || byPE[0].Cycles != 60 {
		t.Fatalf("TotalByPE = %v, want [{pe0 60}]", byPE)
	}
}

func TestProfilerFlightAttachesToSender(t *testing.T) {
	// A message sent from inside pe1's syscall frame and received on
	// pe3 at cycle 25 books a 15-cycle flight leaf under the sender.
	pr := feed([]Event{
		{At: 0, PE: 1, Layer: LApp, Kind: EvSyscallStart, Span: 7},
		{At: 10, PE: 1, Layer: LDTU, Kind: EvMsgSend, Span: 7},
		{At: 25, PE: 3, Layer: LDTU, Kind: EvMsgRecv, Span: 7},
		{At: 40, PE: 1, Layer: LApp, Kind: EvSyscallEnd, Span: 7},
	})
	if got := cyclesOf(pr, "pe1;app/syscall;dtu/flight"); got != 15 {
		t.Fatalf("flight = %d, want 15\n%v", got, pr.Folded())
	}
	// The flight counts as child time: syscall self is 40-15=25.
	if got := cyclesOf(pr, "pe1;app/syscall"); got != 25 {
		t.Fatalf("syscall self = %d, want 25\n%v", got, pr.Folded())
	}
}

func TestProfilerUnmatchedEventsDropped(t *testing.T) {
	// Frames without an end (crashed program) and receives without a
	// send contribute nothing.
	pr := feed([]Event{
		{At: 0, PE: 4, Layer: LApp, Kind: EvSyscallStart, Span: 1},
		{At: 9, PE: 4, Layer: LDTU, Kind: EvMsgRecv, Span: 99},
	})
	if folded := pr.Folded(); len(folded) != 0 {
		t.Fatalf("unmatched events attributed cycles: %v", folded)
	}
}

func TestProfilerDeterministicOutput(t *testing.T) {
	events := []Event{
		{At: 0, PE: 0, Layer: LKernel, Kind: EvKSyscallStart, Span: 1},
		{At: 5, PE: 1, Layer: LApp, Kind: EvSyscallStart, Span: 2},
		{At: 30, PE: 1, Layer: LApp, Kind: EvSyscallEnd, Span: 2},
		{At: 50, PE: 0, Layer: LKernel, Kind: EvKSyscallEnd, Span: 1},
	}
	var a, b strings.Builder
	if err := feed(events).WriteFolded(&a); err != nil {
		t.Fatal(err)
	}
	if err := feed(events).WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() || a.Len() == 0 {
		t.Fatalf("WriteFolded not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	// Top(1) picks the largest self-time line.
	top := feed(events).Top(1)
	if len(top) != 1 || top[0].Path != "pe0;kernel/ksyscall" || top[0].Cycles != 50 {
		t.Fatalf("Top(1) = %v", top)
	}
}
