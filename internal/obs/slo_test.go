package obs

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

const (
	testSLOAvail = "test_avail"
	testSLOTail  = "test_tail_p99"
)

// availCfg: 10-bucket window of 1000 cycles, short window 2 buckets,
// burn thresholds 2 on both windows, 10% error budget.
func availCfg() SLOConfig {
	return SLOConfig{Objective: 0.9, Window: 1000, Buckets: 10,
		ShortBuckets: 2, SlowBurn: 2, FastBurn: 2}
}

func TestSLOBreachAndRecovery(t *testing.T) {
	s := NewSLOSet()
	o := s.Objective(testSLOAvail, availCfg())
	var events []BreachEvent
	o.Subscribe(func(ev BreachEvent) { events = append(events, ev) })

	// All good: healthy, burn 0.
	for i := 0; i < 10; i++ {
		o.Observe(sTime(i*10), 0, true)
	}
	if o.State() != SLOHealthy {
		t.Fatalf("state = %v after good traffic", o.State())
	}
	// All bad: bad fraction → 1.0, burn → 10 ≥ both thresholds.
	for i := 0; i < 30; i++ {
		o.Observe(sTime(200+i), 0, false)
	}
	if o.State() != SLOBreached {
		t.Fatalf("state = %v after bad burst, want BREACHED", o.State())
	}
	if len(events) != 1 || events[0].State != SLOBreached {
		t.Fatalf("breach events = %+v, want one BREACHED transition", events)
	}
	if events[0].BurnLong < 2 || events[0].BurnShort < 2 {
		t.Fatalf("breach burn rates = %.2f/%.2f, want >= 2", events[0].BurnLong, events[0].BurnShort)
	}
	// Sustained good traffic rotates the bad buckets out of the window.
	for i := 0; i < 200; i++ {
		o.Observe(sTime(300+i*10), 0, true)
	}
	if o.State() != SLOHealthy {
		t.Fatalf("state = %v after recovery, want healthy", o.State())
	}
	if len(events) != 2 || events[1].State != SLOHealthy {
		t.Fatalf("events = %+v, want BREACHED then healthy", events)
	}
	if o.Transitions() != 2 {
		t.Fatalf("transitions = %d, want 2", o.Transitions())
	}
}

func TestSLOLatencyBound(t *testing.T) {
	s := NewSLOSet()
	o := s.Objective(testSLOTail, SLOConfig{Objective: 0.5, LatencyBound: 100,
		Window: 1000, Buckets: 10, ShortBuckets: 2, SlowBurn: 1, FastBurn: 1})
	o.Observe(1, 50, true)   // good: fast and ok
	o.Observe(2, 150, true)  // bad: ok but over bound
	o.Observe(3, 50, false)  // bad: fast but failed
	good, total := o.Counts()
	if good != 1 || total != 3 {
		t.Fatalf("counts = %d/%d, want 1/3", good, total)
	}
}

func TestSLOSetOrderingAndSnapshot(t *testing.T) {
	build := func() *SLOSet {
		s := NewSLOSet()
		s.Objective(testSLOTail, SLOConfig{Objective: 0.99, LatencyBound: 500, Window: 1 << 12})
		s.Objective(testSLOAvail, availCfg())
		s.ObserveAll(100, 50, true)
		s.ObserveAll(200, 600, true)
		s.ObserveAll(300, 10, false)
		return s
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteSnapshot(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteSnapshot(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
	s := build()
	all := s.All()
	if len(all) != 2 || all[0].Name() != testSLOTail || all[1].Name() != testSLOAvail {
		t.Fatalf("registration order not preserved: %v", all)
	}
	if s.Get(testSLOAvail) != all[1] {
		t.Fatalf("Get returned wrong objective")
	}
}

func TestSLOReregistrationPanicsOnMismatch(t *testing.T) {
	s := NewSLOSet()
	s.Objective(testSLOAvail, availCfg())
	if o := s.Objective(testSLOAvail, availCfg()); o == nil {
		t.Fatalf("same-config re-registration should return the objective")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("different-config re-registration did not panic")
		}
	}()
	s.Objective(testSLOAvail, SLOConfig{Objective: 0.5, Window: 10})
}

func TestSLONilSafety(t *testing.T) {
	var s *SLOSet
	if o := s.Objective(testSLOAvail, availCfg()); o != nil {
		t.Fatalf("nil set returned non-nil objective")
	}
	s.ObserveAll(1, 1, true) // must not panic
	var o *SLO
	o.Observe(1, 1, true)
	o.Subscribe(func(BreachEvent) {})
	if o.State() != SLOHealthy {
		t.Fatalf("nil SLO not healthy")
	}
	if l, sh := o.BurnRates(); l != 0 || sh != 0 {
		t.Fatalf("nil SLO burn rates nonzero")
	}
	var tr *Tracer
	if tr.SLOs() != nil {
		t.Fatalf("nil tracer returned SLO set")
	}
}

func TestSLOWindowRotationClearsHistory(t *testing.T) {
	s := NewSLOSet()
	o := s.Objective(testSLOAvail, availCfg())
	for i := 0; i < 10; i++ {
		o.Observe(sTime(i), 0, false)
	}
	if l, _ := o.BurnRates(); l < 2 {
		t.Fatalf("burn = %.2f, want >= 2 after bad burst", l)
	}
	// One observation a full window later: every old bucket rotates out.
	o.Observe(sTime(5000), 0, true)
	if l, _ := o.BurnRates(); l != 0 {
		t.Fatalf("burn = %.2f after full-window gap, want 0", l)
	}
}

func sTime(i int) sim.Time { return sim.Time(i) }
