package obs

import (
	"bytes"
	"strings"
	"testing"
)

// capture builds a minimal RunCapture by hand for diff tests.
func testCapture(workload string, paths []CapturePath, hists []CaptureHist, blame []CaptureBlame) *RunCapture {
	return &RunCapture{
		Schema:   CaptureSchema,
		Workload: workload,
		Profile:  paths,
		Hists:    hists,
		Blame:    CaptureBlameSet{Completed: 1, Total: blame},
	}
}

func TestCaptureHistogramRoundTrip(t *testing.T) {
	var h Histogram
	h.Name = "rt"
	for _, v := range []uint64{0, 1, 2, 3, 100, 1 << 20, 1 << 40} {
		h.Observe(v)
	}
	ch := CaptureHistogram(&h)
	got := ch.Histogram()
	if got.Count() != h.Count() || got.Sum() != h.Sum() || got.Max() != h.Max() {
		t.Fatalf("round trip lost aggregates: %+v vs %+v", got, h)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got.Quantile(q) != h.Quantile(q) {
			t.Fatalf("quantile %g: capture %d, live %d", q, got.Quantile(q), h.Quantile(q))
		}
	}
}

func TestCaptureSchemaMismatchRejected(t *testing.T) {
	if _, err := ReadCaptureJSON([]byte(`{"schema": 99, "workload": "tar"}`)); err == nil {
		t.Fatal("schema 99 capture accepted")
	}
	// Other schema-1 JSON (a bench file) must not parse as a capture —
	// captures always name their workload.
	if _, err := ReadCaptureJSON([]byte(`{"schema": 1, "experiments": []}`)); err == nil {
		t.Fatal("workload-less JSON accepted as a capture")
	}
	old := testCapture("tar", nil, nil, nil)
	bad := testCapture("tar", nil, nil, nil)
	bad.Schema = CaptureSchema + 1
	if _, err := DiffCaptures(old, bad); err == nil {
		t.Fatal("diff of mismatched schemas accepted")
	}
	if _, err := DiffCaptures(bad, old); err == nil {
		t.Fatal("diff of mismatched schemas accepted (old side)")
	}
}

func TestDiffWorkloadMismatchRejected(t *testing.T) {
	a := testCapture("tar", nil, nil, nil)
	b := testCapture("find", nil, nil, nil)
	if _, err := DiffCaptures(a, b); err == nil {
		t.Fatal("diff of different workloads accepted")
	}
}

// A self-comparison must render byte-identically as "no drift" in all
// three formats.
func TestDiffSelfComparisonNoDrift(t *testing.T) {
	var h Histogram
	h.Name = "lat"
	h.Observe(100)
	h.Observe(4000)
	c := testCapture("tar",
		[]CapturePath{{Path: "pe2;app/syscall", Cycles: 500}, {Path: "pe2;app/syscall;dtu/flight", Cycles: 40}},
		[]CaptureHist{CaptureHistogram(&h)},
		[]CaptureBlame{{Category: "app", Cycles: 300}, {Category: "kernel", Cycles: 200}})
	d, err := DiffCaptures(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("self-diff not empty: %+v", d)
	}
	var text1, text2 bytes.Buffer
	if err := d.WriteText(&text1, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteText(&text2, 10); err != nil {
		t.Fatal(err)
	}
	want := "capture tar: no drift\n"
	if text1.String() != want || text2.String() != want {
		t.Fatalf("self-diff rendered %q / %q, want %q", text1.String(), text2.String(), want)
	}
	if d.Summary() != "capture tar: no drift" {
		t.Fatalf("summary = %q", d.Summary())
	}
	var f1, f2 bytes.Buffer
	if err := WriteFoldedDiff(&f1, c, c); err != nil {
		t.Fatal(err)
	}
	if err := WriteFoldedDiff(&f2, c, c); err != nil {
		t.Fatal(err)
	}
	if f1.String() != f2.String() {
		t.Fatal("folded self-diff not byte-stable")
	}
	for _, line := range strings.Split(strings.TrimSpace(f1.String()), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[1] != fields[2] {
			t.Fatalf("folded self-diff line %q not old==new", line)
		}
	}
}

// Quantile deltas must survive empty and singleton histograms without
// panicking or inventing drift.
func TestDiffHistEmptyAndSingleton(t *testing.T) {
	var empty, single Histogram
	empty.Name = "lat"
	single.Name = "lat"
	single.Observe(1000)

	// empty vs empty: no shift.
	a := testCapture("tar", nil, []CaptureHist{CaptureHistogram(&empty)}, nil)
	d, err := DiffCaptures(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Hists) != 0 {
		t.Fatalf("empty-vs-empty produced hist delta: %+v", d.Hists)
	}

	// empty vs singleton: one shift, quantiles 0 -> bucket-upper(1000).
	b := testCapture("tar", nil, []CaptureHist{CaptureHistogram(&single)}, nil)
	d, err = DiffCaptures(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Hists) != 1 {
		t.Fatalf("empty-vs-singleton: %d hist deltas", len(d.Hists))
	}
	hd := d.Hists[0]
	if hd.OldCount != 0 || hd.NewCount != 1 {
		t.Fatalf("counts %d -> %d", hd.OldCount, hd.NewCount)
	}
	if len(hd.Quantiles) != len(DiffQuantiles) {
		t.Fatalf("%d quantiles, want %d", len(hd.Quantiles), len(DiffQuantiles))
	}
	want := single.Quantile(0.99)
	for _, q := range hd.Quantiles {
		if q.Old != 0 || q.New != want {
			t.Fatalf("quantile p%g: %d -> %d, want 0 -> %d", q.Q*100, q.Old, q.New, want)
		}
	}
	if len(hd.Buckets) != 1 {
		t.Fatalf("bucket deltas: %+v", hd.Buckets)
	}

	// singleton vs singleton: identical, no shift.
	d, err = DiffCaptures(b, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Hists) != 0 || !d.Empty() {
		t.Fatalf("singleton self-diff not empty: %+v", d)
	}
}

// Runs whose span paths do not overlap at all must still align: every
// path appears as a delta against zero, and the folded diff covers the
// union.
func TestDiffDisjointSpanPaths(t *testing.T) {
	a := testCapture("tar",
		[]CapturePath{{Path: "pe1;app/compute", Cycles: 700}},
		nil, nil)
	b := testCapture("tar",
		[]CapturePath{{Path: "pe0;kernel/ksyscall", Cycles: 900}},
		nil, nil)
	d, err := DiffCaptures(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty() {
		t.Fatal("disjoint-path diff reported empty")
	}
	if d.OldTotal != 700 || d.NewTotal != 900 {
		t.Fatalf("totals %d -> %d", d.OldTotal, d.NewTotal)
	}
	if len(d.Groups) != 2 {
		t.Fatalf("groups: %+v", d.Groups)
	}
	// Largest absolute delta first: kernel grew by 900, app shrank 700.
	if d.Groups[0].Layer != "kernel" || d.Groups[0].Old != 0 || d.Groups[0].New != 900 {
		t.Fatalf("group[0] = %+v", d.Groups[0])
	}
	if d.Groups[1].Layer != "app" || d.Groups[1].Old != 700 || d.Groups[1].New != 0 {
		t.Fatalf("group[1] = %+v", d.Groups[1])
	}
	if l, ok := d.TopLayer(); !ok || l.Layer != "kernel" {
		t.Fatalf("top layer = %+v ok=%v", l, ok)
	}

	var folded bytes.Buffer
	if err := WriteFoldedDiff(&folded, a, b); err != nil {
		t.Fatal(err)
	}
	want := "pe0;kernel/ksyscall 0 900\npe1;app/compute 700 0\n"
	if folded.String() != want {
		t.Fatalf("folded diff = %q, want %q", folded.String(), want)
	}
}

func TestDiffBlameDrift(t *testing.T) {
	a := testCapture("tar", nil, nil,
		[]CaptureBlame{{Category: "app", Cycles: 600}, {Category: "kernel", Cycles: 400}})
	b := testCapture("tar", nil, nil,
		[]CaptureBlame{{Category: "app", Cycles: 600}, {Category: "kernel", Cycles: 600}})
	d, err := DiffCaptures(a, b)
	if err != nil {
		t.Fatal(err)
	}
	top, ok := d.TopBlame()
	if !ok || top.Category != "kernel" || top.Delta() != 200 {
		t.Fatalf("top blame = %+v ok=%v", top, ok)
	}
	if top.OldShare != 0.4 || top.NewShare != 0.5 {
		t.Fatalf("shares %g -> %g", top.OldShare, top.NewShare)
	}
	// The full category table is retained in order.
	if len(d.Blame) != 2 || d.Blame[0].Category != "app" {
		t.Fatalf("blame table = %+v", d.Blame)
	}
}

func TestDiffMetricsChangedAddedRemoved(t *testing.T) {
	a := testCapture("tar", nil, nil, nil)
	a.Metrics = []CaptureMetric{
		{Name: "same", Idx: -1, Kind: "counter", Value: 5},
		{Name: "moved", Idx: -1, Kind: "counter", Value: 10},
		{Name: "gone", Idx: -1, Kind: "gauge", Value: 1},
		{Name: "vec", Idx: 2, Kind: "counter", Value: 7},
	}
	b := testCapture("tar", nil, nil, nil)
	b.Metrics = []CaptureMetric{
		{Name: "same", Idx: -1, Kind: "counter", Value: 5},
		{Name: "moved", Idx: -1, Kind: "counter", Value: 12},
		{Name: "born", Idx: -1, Kind: "counter", Value: 3},
		{Name: "vec", Idx: 2, Kind: "counter", Value: 9},
	}
	d, err := DiffCaptures(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]MetricDelta{}
	for _, m := range d.Metrics {
		got[m.Name] = m
	}
	if _, ok := got["same"]; ok {
		t.Fatal("unchanged metric reported")
	}
	if m := got["moved"]; m.Status != MetricChanged || m.Old != 10 || m.New != 12 {
		t.Fatalf("moved = %+v", m)
	}
	if m := got["born"]; m.Status != MetricAdded || m.New != 3 {
		t.Fatalf("born = %+v", m)
	}
	if m := got["gone"]; m.Status != MetricRemoved || m.Old != 1 {
		t.Fatalf("gone = %+v", m)
	}
	if m := got["vec[2]"]; m.Status != MetricChanged || m.Old != 7 || m.New != 9 {
		t.Fatalf("vec[2] = %+v", m)
	}
}

// Group contributor lists are capped at DiffTopPaths, largest absolute
// delta first.
func TestDiffTopPathsCap(t *testing.T) {
	a := testCapture("tar", []CapturePath{
		{Path: "pe1;app/compute", Cycles: 10},
		{Path: "pe2;app/compute", Cycles: 10},
	}, nil, nil)
	b := testCapture("tar", []CapturePath{
		{Path: "pe1;app/compute", Cycles: 110}, // +100
		{Path: "pe2;app/compute", Cycles: 40},  // +30
		{Path: "pe3;app/compute", Cycles: 20},  // +20
		{Path: "pe4;app/compute", Cycles: 5},   // +5
	}, nil, nil)
	d, err := DiffCaptures(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// All four paths are distinct PEs, so four groups; each has one path.
	if len(d.Groups) != 4 {
		t.Fatalf("groups: %+v", d.Groups)
	}
	if d.Groups[0].Paths[0].Path != "pe1;app/compute" {
		t.Fatalf("group[0] = %+v", d.Groups[0])
	}
	// Same-leaf aggregation: one layer rollup over everything.
	if len(d.Layers) != 1 || d.Layers[0].Layer != "app" || d.Layers[0].Delta() != 155 {
		t.Fatalf("layers = %+v", d.Layers)
	}
}

func TestDiffTextAndJSONDeterministic(t *testing.T) {
	var h Histogram
	h.Name = "lat"
	h.Observe(50)
	a := testCapture("tar",
		[]CapturePath{{Path: "pe1;app/compute", Cycles: 100}},
		[]CaptureHist{CaptureHistogram(&h)},
		[]CaptureBlame{{Category: "app", Cycles: 100}})
	h.Observe(90000)
	b := testCapture("tar",
		[]CapturePath{{Path: "pe1;app/compute", Cycles: 100}, {Path: "pe0;kernel/ksyscall", Cycles: 30}},
		[]CaptureHist{CaptureHistogram(&h)},
		[]CaptureBlame{{Category: "app", Cycles: 100}, {Category: "kernel", Cycles: 30}})
	render := func() (string, string) {
		d, err := DiffCaptures(a, b)
		if err != nil {
			t.Fatal(err)
		}
		var text, js bytes.Buffer
		if err := d.WriteText(&text, 5); err != nil {
			t.Fatal(err)
		}
		if err := d.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return text.String(), js.String()
	}
	t1, j1 := render()
	t2, j2 := render()
	if t1 != t2 || j1 != j2 {
		t.Fatal("diff rendering not byte-stable across repeated diffs")
	}
	if !strings.Contains(t1, "kernel") || !strings.Contains(t1, "blame drift") {
		t.Fatalf("text report missing sections:\n%s", t1)
	}
}

func TestCaptureWriteReadRoundTrip(t *testing.T) {
	var h Histogram
	h.Name = "lat"
	h.Observe(123)
	c := testCapture("find",
		[]CapturePath{{Path: "pe1;app/compute", Cycles: 9}},
		[]CaptureHist{CaptureHistogram(&h)},
		[]CaptureBlame{{Category: "app", Cycles: 9}})
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCaptureJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := got.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("capture JSON round trip not byte-identical")
	}
}
