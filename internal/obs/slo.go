package obs

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Deterministic SLO engine: sim-clock windowed objectives with
// multi-window burn-rate evaluation (docs/OBSERVABILITY.md). Like the
// metrics registry, the set is engine-local, nil-safe, registered in
// deterministic order, and snapshot-stable. It schedules no engine
// events: windows rotate lazily on observation timestamps, so an
// unobserved objective costs nothing and a run without observations is
// bit-identical to a run without the SLO layer at all.

// SLOState is an objective's health.
type SLOState uint8

const (
	// SLOHealthy: burn rates below both thresholds.
	SLOHealthy SLOState = iota
	// SLOBreached: both the long and short window burn rates exceed
	// their thresholds — the error budget is being consumed fast
	// enough, for long enough, to page (multi-window burn-rate alert).
	SLOBreached
)

func (s SLOState) String() string {
	if s == SLOBreached {
		return "BREACHED"
	}
	return "healthy"
}

// SLOConfig parameterizes one objective.
type SLOConfig struct {
	// Objective is the target good fraction, e.g. 0.99 or 0.999.
	Objective float64
	// LatencyBound, if nonzero, makes this a latency objective: an
	// observation is good iff it succeeded AND finished within the
	// bound. Zero makes it an availability objective (good iff ok).
	LatencyBound sim.Time
	// Window is the long evaluation window in cycles. Required.
	Window sim.Time
	// Buckets splits the window ring; more buckets, sharper rotation.
	// Default 32.
	Buckets int
	// ShortBuckets is the short-window length in buckets (the fast
	// burn signal). Default Buckets/8, minimum 1.
	ShortBuckets int
	// SlowBurn/FastBurn are the burn-rate thresholds for the long and
	// short windows. Burn rate 1.0 consumes exactly the error budget
	// over the window. Defaults 6 and 14.4 (the classic page-worthy
	// multi-window pair).
	SlowBurn, FastBurn float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Buckets <= 0 {
		c.Buckets = 32
	}
	if c.ShortBuckets <= 0 {
		c.ShortBuckets = c.Buckets / 8
	}
	if c.ShortBuckets < 1 {
		c.ShortBuckets = 1
	}
	if c.ShortBuckets > c.Buckets {
		c.ShortBuckets = c.Buckets
	}
	if c.SlowBurn == 0 {
		c.SlowBurn = 6
	}
	if c.FastBurn == 0 {
		c.FastBurn = 14.4
	}
	if c.Window <= 0 {
		c.Window = 1 << 20
	}
	return c
}

// BreachEvent is delivered to subscribers on every state transition.
type BreachEvent struct {
	Name      string
	At        sim.Time
	State     SLOState
	BurnLong  float64
	BurnShort float64
}

// sloBucket is one ring slot of windowed counts.
type sloBucket struct {
	//m3vet:resolve sharedstate owner bucket counts are bumped on Observe in the observing simulation context only
	good, total uint64
}

// SLO is one registered objective.
type SLO struct {
	name string
	cfg  SLOConfig

	//m3vet:resolve sharedstate owner ring counts rotate on Observe in the observing simulation context only
	ring []sloBucket
	//m3vet:resolve sharedstate owner current bucket index advances on Observe only
	cur int64 // absolute bucket index of ring head, -1 before first obs
	//m3vet:resolve sharedstate owner lifetime totals are bumped on Observe only
	good, total uint64
	//m3vet:resolve sharedstate owner state flips on Observe only
	state SLOState
	//m3vet:resolve sharedstate owner transition count is bumped on Observe only
	transitions uint64
	//m3vet:resolve sharedstate owner subscriber list is appended at registration time only
	subs []func(BreachEvent)
}

// Name returns the objective's registered name.
func (o *SLO) Name() string { return o.name }

// Config returns the objective's (default-filled) configuration.
func (o *SLO) Config() SLOConfig {
	if o == nil {
		return SLOConfig{}
	}
	return o.cfg
}

// State returns the current health.
func (o *SLO) State() SLOState {
	if o == nil {
		return SLOHealthy
	}
	return o.state
}

// Subscribe registers a breach-transition callback, invoked
// synchronously (in simulation context) on every state change.
// Callback order is registration order.
func (o *SLO) Subscribe(fn func(BreachEvent)) {
	if o == nil {
		return
	}
	o.subs = append(o.subs, fn)
}

// bucketWidth returns the cycles per ring slot.
func (o *SLO) bucketWidth() sim.Time {
	w := o.cfg.Window / sim.Time(o.cfg.Buckets)
	if w < 1 {
		w = 1
	}
	return w
}

// rotate advances the ring so that the bucket for time at is current,
// zeroing skipped slots.
func (o *SLO) rotate(at sim.Time) {
	idx := int64(at / o.bucketWidth())
	if o.cur < 0 {
		o.cur = idx
		return
	}
	if idx-o.cur >= int64(len(o.ring)) {
		// The whole window elapsed since the last observation.
		for i := range o.ring {
			o.ring[i] = sloBucket{}
		}
		o.cur = idx
		return
	}
	for o.cur < idx {
		o.cur++
		o.ring[int(o.cur)%len(o.ring)] = sloBucket{}
	}
}

// Observe records one observation at simulated time at. For latency
// objectives, good = ok && latency <= bound; for availability
// objectives the latency is ignored.
func (o *SLO) Observe(at sim.Time, latency sim.Time, ok bool) {
	if o == nil {
		return
	}
	good := ok
	if o.cfg.LatencyBound > 0 {
		good = ok && latency <= o.cfg.LatencyBound
	}
	o.rotate(at)
	b := &o.ring[int(o.cur)%len(o.ring)]
	b.total++
	o.total++
	if good {
		b.good++
		o.good++
	}
	o.evaluate(at)
}

// burn computes the burn rate over the last n buckets: the observed
// bad fraction divided by the budgeted bad fraction. Windows with no
// observations burn nothing.
func (o *SLO) burn(n int) float64 {
	var good, total uint64
	for i := 0; i < n; i++ {
		b := o.ring[int(o.cur-int64(i)+int64(len(o.ring))*4)%len(o.ring)]
		good += b.good
		total += b.total
	}
	if total == 0 {
		return 0
	}
	budget := 1 - o.cfg.Objective
	if budget <= 0 {
		budget = 1e-9
	}
	bad := float64(total-good) / float64(total)
	return bad / budget
}

// evaluate recomputes the multi-window state and notifies subscribers
// on transitions.
func (o *SLO) evaluate(at sim.Time) {
	long := o.burn(o.cfg.Buckets)
	short := o.burn(o.cfg.ShortBuckets)
	next := o.state
	if long >= o.cfg.SlowBurn && short >= o.cfg.FastBurn {
		next = SLOBreached
	} else if long < o.cfg.SlowBurn {
		next = SLOHealthy
	}
	if next == o.state {
		return
	}
	o.state = next
	o.transitions++
	ev := BreachEvent{Name: o.name, At: at, State: next, BurnLong: long, BurnShort: short}
	for _, fn := range o.subs {
		fn(ev)
	}
}

// BurnRates returns the current (long, short) burn rates.
func (o *SLO) BurnRates() (float64, float64) {
	if o == nil || o.cur < 0 {
		return 0, 0
	}
	return o.burn(o.cfg.Buckets), o.burn(o.cfg.ShortBuckets)
}

// Counts returns lifetime (good, total) observation counts.
func (o *SLO) Counts() (uint64, uint64) {
	if o == nil {
		return 0, 0
	}
	return o.good, o.total
}

// Transitions returns the number of state changes so far.
func (o *SLO) Transitions() uint64 {
	if o == nil {
		return 0
	}
	return o.transitions
}

// SLOSet is the per-tracer objective registry. Registration order is
// snapshot and iteration order; names must be unique and — enforced by
// m3vet's sloname rule — package-level constants, so the set of
// objectives is a static property of the build, never data-dependent.
type SLOSet struct {
	//m3vet:resolve sharedstate owner objective list and index are appended at registration time in setup context only
	slos  []*SLO
	index map[string]*SLO
}

// NewSLOSet creates an empty set.
func NewSLOSet() *SLOSet {
	return &SLOSet{index: make(map[string]*SLO)}
}

// Objective registers (or returns the already-registered) objective
// with the given package-constant name. Re-registration with a
// different config panics: an SLO's definition is part of the contract.
func (s *SLOSet) Objective(name string, cfg SLOConfig) *SLO {
	if s == nil {
		return nil
	}
	if o := s.index[name]; o != nil {
		if o.cfg != cfg.withDefaults() {
			panic(fmt.Sprintf("obs: SLO %q re-registered with different config", name))
		}
		return o
	}
	c := cfg.withDefaults()
	o := &SLO{name: name, cfg: c, ring: make([]sloBucket, c.Buckets), cur: -1}
	s.slos = append(s.slos, o)
	s.index[name] = o
	return o
}

// Get returns the named objective or nil.
func (s *SLOSet) Get(name string) *SLO {
	if s == nil {
		return nil
	}
	return s.index[name]
}

// All returns the objectives in registration order.
func (s *SLOSet) All() []*SLO {
	if s == nil {
		return nil
	}
	return s.slos
}

// ObserveAll feeds one observation to every objective (each judges
// goodness by its own bound). This is how the critical-path engine
// fans completed requests into the set.
func (s *SLOSet) ObserveAll(at sim.Time, latency sim.Time, ok bool) {
	if s == nil {
		return
	}
	for _, o := range s.slos {
		o.Observe(at, latency, ok)
	}
}

// WriteSnapshot writes the deterministic text snapshot: one line per
// objective in registration order.
func (s *SLOSet) WriteSnapshot(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# m3 slo v1 objectives=%d\n", len(s.All())); err != nil {
		return err
	}
	for _, o := range s.All() {
		long, short := o.BurnRates()
		if _, err := fmt.Fprintf(w, "slo %s objective=%g good=%d total=%d burn_long=%.3f burn_short=%.3f transitions=%d state=%s\n",
			o.name, o.cfg.Objective, o.good, o.total, long, short, o.transitions, o.state); err != nil {
			return err
		}
	}
	return nil
}
