package kif

import "testing"

// The layout constants are contracts between the kernel and libm3;
// these tests pin them against the platform's SPM sizes.

func TestAppLayoutFitsSPM(t *testing.T) {
	const spm = 64 << 10
	if RBufSpaceEnd > spm {
		t.Fatalf("ringbuffer space ends at %d, beyond the %d-byte SPM", RBufSpaceEnd, spm)
	}
	if SysReplyBufAddr+SysReplySlotSize*SysReplySlots > CallReplyBufAddr {
		t.Fatal("syscall-reply ringbuffer overlaps the call-reply ringbuffer")
	}
	if CallReplyBufAddr+CallReplySlotSize*CallReplySlots > RBufSpaceBegin {
		t.Fatal("call-reply ringbuffer overlaps the free ringbuffer space")
	}
	if RBufSpaceBegin >= RBufSpaceEnd {
		t.Fatal("no free ringbuffer space")
	}
}

func TestKernelLayoutFitsSPM(t *testing.T) {
	const spm = 64 << 10
	sysEnd := KSyscallBufAddr + KSyscallSlotSize*KSyscallSlots
	if sysEnd > KServReplyBufAddr {
		t.Fatal("kernel syscall ringbuffer overlaps the service-reply ringbuffer")
	}
	if KServReplyBufAddr+KServReplySlotSize*KServReplySlots > spm {
		t.Fatalf("kernel ringbuffers exceed the SPM")
	}
}

func TestEndpointConventions(t *testing.T) {
	if SyscallEP != 0 || SysReplyEP != 1 || CallReplyEP != 2 {
		t.Fatal("standard endpoint numbering changed; kernel and libm3 disagree")
	}
	if FirstFreeEP <= CallReplyEP {
		t.Fatal("free endpoints overlap the standard ones")
	}
	if KFirstSrvEP <= KServReplyEP {
		t.Fatal("kernel service endpoints overlap its receive endpoints")
	}
	if MaxMsgSize >= SysReplySlotSize {
		t.Fatal("max message size does not leave room for the DTU header")
	}
}
