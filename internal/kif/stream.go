package kif

import (
	"encoding/binary"
	"fmt"
)

// OStream marshals values into a message payload. The zero value is
// ready to use. Methods return the stream for chaining, mirroring the
// paper's shift-operator marshalling in libm3.
type OStream struct {
	buf []byte
}

// Bytes returns the marshalled payload.
func (o *OStream) Bytes() []byte { return o.buf }

// Len returns the payload size so far.
func (o *OStream) Len() int { return len(o.buf) }

// U64 appends an unsigned 64-bit value.
func (o *OStream) U64(v uint64) *OStream {
	o.buf = binary.LittleEndian.AppendUint64(o.buf, v)
	return o
}

// I64 appends a signed 64-bit value.
func (o *OStream) I64(v int64) *OStream { return o.U64(uint64(v)) }

// Op appends a syscall opcode.
func (o *OStream) Op(v SyscallOp) *OStream { return o.U64(uint64(v)) }

// Sel appends a capability selector.
func (o *OStream) Sel(v CapSel) *OStream { return o.U64(uint64(v)) }

// Err appends an error code.
func (o *OStream) Err(v Error) *OStream { return o.U64(uint64(v)) }

// Str appends a length-prefixed string.
func (o *OStream) Str(s string) *OStream {
	o.U64(uint64(len(s)))
	o.buf = append(o.buf, s...)
	return o
}

// Blob appends a length-prefixed byte slice.
func (o *OStream) Blob(b []byte) *OStream {
	o.U64(uint64(len(b)))
	o.buf = append(o.buf, b...)
	return o
}

// IStream unmarshals values from a message payload. Decoding past the
// end or malformed lengths set a sticky error checked via Err.
type IStream struct {
	buf []byte
	pos int
	err error
}

// NewIStream returns a stream decoding buf.
func NewIStream(buf []byte) *IStream { return &IStream{buf: buf} }

// Err returns the first decoding error, or nil.
func (i *IStream) Err() error { return i.err }

// Remaining returns the undecoded byte count.
func (i *IStream) Remaining() int { return len(i.buf) - i.pos }

func (i *IStream) fail(what string) {
	if i.err == nil {
		i.err = fmt.Errorf("kif: truncated message reading %s at %d/%d", what, i.pos, len(i.buf))
	}
}

// U64 decodes an unsigned 64-bit value.
func (i *IStream) U64() uint64 {
	if i.err != nil || i.pos+8 > len(i.buf) {
		i.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(i.buf[i.pos:])
	i.pos += 8
	return v
}

// I64 decodes a signed 64-bit value.
func (i *IStream) I64() int64 { return int64(i.U64()) }

// Op decodes a syscall opcode.
func (i *IStream) Op() SyscallOp { return SyscallOp(i.U64()) }

// Sel decodes a capability selector.
func (i *IStream) Sel() CapSel { return CapSel(i.U64()) }

// ErrCode decodes an error code.
func (i *IStream) ErrCode() Error { return Error(i.U64()) }

// Str decodes a length-prefixed string.
func (i *IStream) Str() string {
	n := int(i.U64())
	if i.err != nil || n < 0 || i.pos+n > len(i.buf) {
		i.fail("string")
		return ""
	}
	s := string(i.buf[i.pos : i.pos+n])
	i.pos += n
	return s
}

// Blob decodes a length-prefixed byte slice (copied).
func (i *IStream) Blob() []byte {
	n := int(i.U64())
	if i.err != nil || n < 0 || i.pos+n > len(i.buf) {
		i.fail("blob")
		return nil
	}
	b := append([]byte(nil), i.buf[i.pos:i.pos+n]...)
	i.pos += n
	return b
}
