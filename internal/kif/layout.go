package kif

// Endpoint conventions between the kernel and libm3. The kernel
// installs the syscall channel (EP0/EP1) and the call-reply gate (EP2)
// when it starts a VPE; everything from FirstFreeEP up is multiplexed
// by libm3 via activate system calls.
const (
	// Application-PE endpoints.
	SyscallEP   = 0 // send gate to the kernel
	SysReplyEP  = 1 // receive gate for syscall replies
	CallReplyEP = 2 // receive gate for gate-call replies
	FirstFreeEP = 3

	// Kernel-PE endpoints.
	KSyscallEP   = 0 // receive gate for all syscalls
	KServReplyEP = 1 // receive gate for service-protocol replies
	KFirstSrvEP  = 2 // send gates to service control gates
)

// Application SPM layout (data scratchpad). The ringbuffers at the
// bottom are installed by the kernel at VPE start.
const (
	SysReplyBufAddr  = 0
	SysReplySlotSize = 512 // including the DTU header
	SysReplySlots    = 2

	CallReplyBufAddr  = SysReplyBufAddr + SysReplySlotSize*SysReplySlots
	CallReplySlotSize = 512
	CallReplySlots    = 4

	// RBufSpace is the SPM region libm3 hands out for receive-gate
	// ringbuffers (half the data SPM; services with many clients need
	// large request ringbuffers).
	RBufSpaceBegin = CallReplyBufAddr + CallReplySlotSize*CallReplySlots
	RBufSpaceEnd   = 32 << 10
)

// Kernel SPM layout.
const (
	KSyscallBufAddr  = 0
	KSyscallSlotSize = 512
	KSyscallSlots    = 48

	KServReplyBufAddr  = KSyscallBufAddr + KSyscallSlotSize*KSyscallSlots
	KServReplySlotSize = 512
	KServReplySlots    = 16
)

// MaxMsgSize is the payload limit for syscall and service messages.
const MaxMsgSize = SysReplySlotSize - 16 // minus the DTU header
