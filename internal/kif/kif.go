// Package kif defines the kernel interface: the wire protocol spoken
// over DTU channels between applications, the M3 kernel, and services.
// It contains the system-call and service-protocol opcodes and a small
// marshalling framework (the paper's libm3 overloads C++ shift
// operators; OStream/IStream are the Go equivalent).
package kif

// Syscall opcodes: messages on an application's syscall send gate,
// handled by the kernel PE.
type SyscallOp uint64

const (
	SysNoop SyscallOp = iota // null system call, used by the Figure 3 micro-benchmark
	SysCreateVPE
	SysVPEStart
	SysVPEWait
	SysExit
	SysReqMem
	SysDeriveMem
	SysCreateRGate
	SysCreateSGate
	SysActivate
	SysCreateSrv
	SysOpenSess
	SysExchangeSess
	SysDelegate
	SysObtain
	SysRevoke
)

var sysNames = map[SyscallOp]string{
	SysNoop: "noop", SysCreateVPE: "createvpe", SysVPEStart: "vpestart",
	SysVPEWait: "vpewait", SysExit: "exit", SysReqMem: "reqmem",
	SysDeriveMem: "derivemem", SysCreateRGate: "creatergate",
	SysCreateSGate: "createsgate", SysActivate: "activate",
	SysCreateSrv: "createsrv", SysOpenSess: "opensess",
	SysExchangeSess: "exchangesess", SysDelegate: "delegate",
	SysObtain: "obtain", SysRevoke: "revoke",
}

func (op SyscallOp) String() string {
	if s, ok := sysNames[op]; ok {
		return s
	}
	return "unknown"
}

// Service-control opcodes: messages from the kernel to a service's
// control gate, created at service registration.
type ServiceOp uint64

const (
	ServOpen     ServiceOp = iota + 100 // open a session
	ServExchange                        // session-scoped capability exchange
	ServCloseSess
)

// Error codes carried in replies. 0 is success.
type Error uint64

const (
	OK Error = iota
	ErrInvalidArgs
	ErrNoSuchCap
	ErrNoPerm
	ErrNoFreePE
	ErrNoSpace
	ErrNoSuchService
	ErrNoSuchSession
	ErrNoSuchFile
	ErrExists
	ErrUnsupported
	ErrEndOfFile
	ErrVPEGone
	ErrRefused
	ErrTimeout
	// ErrOverload reports a request refused by overload control —
	// admission watermark, shed controller, or an open circuit
	// breaker — before any work was done. Unlike ErrTimeout it is a
	// fast failure: clients retry it under a bounded retry budget
	// rather than triggering session recovery (docs/OVERLOAD.md).
	ErrOverload
)

var errNames = map[Error]string{
	OK: "ok", ErrInvalidArgs: "invalid arguments", ErrNoSuchCap: "no such capability",
	ErrNoPerm: "permission denied", ErrNoFreePE: "no free PE", ErrNoSpace: "no space",
	ErrNoSuchService: "no such service", ErrNoSuchSession: "no such session",
	ErrNoSuchFile: "no such file or directory", ErrExists: "already exists",
	ErrUnsupported: "unsupported", ErrEndOfFile: "end of file",
	ErrVPEGone: "vpe gone", ErrRefused: "refused by service",
	ErrTimeout: "timed out", ErrOverload: "overloaded",
}

func (e Error) Error() string {
	if s, ok := errNames[e]; ok {
		return s
	}
	return "unknown error"
}

// CapSel is a capability selector: an index into a VPE's capability
// table, allocated by the application (as in L4-style systems) and
// validated by the kernel.
type CapSel uint64

// InvalidSel marks "no capability".
const InvalidSel CapSel = ^CapSel(0)

// CapRange names a contiguous range of selectors exchanged in one
// operation.
type CapRange struct {
	Start CapSel
	Count uint64
}

// Perm mirrors dtu.Perm at the protocol level to keep kif free of
// hardware imports.
type Perm uint64

// Permissions.
const (
	PermR  Perm = 1
	PermW  Perm = 2
	PermRW Perm = PermR | PermW
)
