package kif

import (
	"testing"
	"testing/quick"
)

func TestStreamRoundTrip(t *testing.T) {
	var o OStream
	o.Op(SysCreateVPE).Sel(7).Str("hello").U64(99).I64(-5).Blob([]byte{1, 2, 3}).Err(ErrNoSpace)
	i := NewIStream(o.Bytes())
	if got := i.Op(); got != SysCreateVPE {
		t.Fatalf("op = %v", got)
	}
	if got := i.Sel(); got != 7 {
		t.Fatalf("sel = %v", got)
	}
	if got := i.Str(); got != "hello" {
		t.Fatalf("str = %q", got)
	}
	if got := i.U64(); got != 99 {
		t.Fatalf("u64 = %d", got)
	}
	if got := i.I64(); got != -5 {
		t.Fatalf("i64 = %d", got)
	}
	b := i.Blob()
	if len(b) != 3 || b[0] != 1 || b[2] != 3 {
		t.Fatalf("blob = %v", b)
	}
	if got := i.ErrCode(); got != ErrNoSpace {
		t.Fatalf("err = %v", got)
	}
	if i.Err() != nil {
		t.Fatalf("stream err = %v", i.Err())
	}
	if i.Remaining() != 0 {
		t.Fatalf("remaining = %d", i.Remaining())
	}
}

func TestStreamTruncation(t *testing.T) {
	var o OStream
	o.U64(1).Str("abcdef")
	raw := o.Bytes()
	i := NewIStream(raw[:10])
	i.U64()
	_ = i.Str()
	if i.Err() == nil {
		t.Fatal("expected truncation error")
	}
	// Sticky: subsequent reads return zero values without panicking.
	if v := i.U64(); v != 0 {
		t.Fatalf("after error, u64 = %d", v)
	}
}

func TestStreamEmptyString(t *testing.T) {
	var o OStream
	o.Str("").Blob(nil)
	i := NewIStream(o.Bytes())
	if s := i.Str(); s != "" {
		t.Fatalf("str = %q", s)
	}
	if b := i.Blob(); len(b) != 0 {
		t.Fatalf("blob = %v", b)
	}
	if i.Err() != nil {
		t.Fatal(i.Err())
	}
}

func TestStreamProperty(t *testing.T) {
	f := func(a uint64, s string, b []byte, c int64) bool {
		var o OStream
		o.U64(a).Str(s).Blob(b).I64(c)
		i := NewIStream(o.Bytes())
		return i.U64() == a && i.Str() == s && string(i.Blob()) == string(b) && i.I64() == c && i.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorStrings(t *testing.T) {
	if OK.Error() != "ok" {
		t.Fatal("OK string")
	}
	if ErrNoSuchFile.Error() != "no such file or directory" {
		t.Fatalf("ErrNoSuchFile = %q", ErrNoSuchFile.Error())
	}
	if Error(9999).Error() != "unknown error" {
		t.Fatal("unknown error string")
	}
	if SysActivate.String() != "activate" {
		t.Fatal("opcode name")
	}
	if SyscallOp(9999).String() != "unknown" {
		t.Fatal("unknown opcode name")
	}
}
