package m3fs

import (
	"bytes"
	"testing"
	"testing/quick"
)

func buildSample() (*FsCore, map[int][]byte) {
	fs := NewFsCore(1<<20, 1024)
	blocks := map[int][]byte{}
	_, _ = fs.Mkdir("/etc")
	_, _ = fs.Mkdir("/var")
	_, _ = fs.Mkdir("/var/log")
	mk := func(path string, blocksN int, fill byte) {
		ino, _, _ := fs.Create(path)
		ext, _ := fs.Append(ino, blocksN, false)
		fs.Truncate(ino, int64(blocksN*1024-100))
		for b := ext.Start; b < ext.Start+ino.AllocBlocks; b++ {
			content := bytes.Repeat([]byte{fill}, 1024)
			blocks[b] = content
		}
	}
	mk("/etc/passwd", 2, 'p')
	mk("/var/log/sys", 5, 's')
	mk("/readme", 1, 'r')
	return fs, blocks
}

func TestImageRoundTrip(t *testing.T) {
	fs, blocks := buildSample()
	img := fs.MarshalImage(func(b int) []byte { return blocks[b] })
	gotBlocks := map[int][]byte{}
	back, err := UnmarshalImage(img, func(b int, content []byte) error {
		gotBlocks[b] = append([]byte(nil), content...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if back.UsedBlocks() != fs.UsedBlocks() {
		t.Fatalf("used blocks = %d, want %d", back.UsedBlocks(), fs.UsedBlocks())
	}
	for _, path := range []string{"/etc/passwd", "/var/log/sys", "/readme"} {
		orig, _, err1 := fs.Lookup(path)
		rest, _, err2 := back.Lookup(path)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: lookup errs %v / %v", path, err1, err2)
		}
		if orig.Size != rest.Size || len(orig.Extents) != len(rest.Extents) {
			t.Fatalf("%s: %d/%d bytes, %d/%d extents", path,
				orig.Size, rest.Size, len(orig.Extents), len(rest.Extents))
		}
	}
	for b, content := range blocks {
		if !bytes.Equal(gotBlocks[b], content) {
			t.Fatalf("block %d content differs", b)
		}
	}
	// The restored filesystem stays usable.
	if _, _, err := back.Create("/var/new"); err != nil {
		t.Fatal(err)
	}
	if err := back.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestImageDeterministic(t *testing.T) {
	fs, blocks := buildSample()
	a := fs.MarshalImage(func(b int) []byte { return blocks[b] })
	b2 := fs.MarshalImage(func(b int) []byte { return blocks[b] })
	if !bytes.Equal(a, b2) {
		t.Fatal("image serialization is not deterministic")
	}
}

func TestImageCorruption(t *testing.T) {
	fs, _ := buildSample()
	img := fs.MarshalImage(nil)
	// Not an image at all.
	if _, err := UnmarshalImage([]byte("garbage-data-here"), nil); err == nil {
		t.Fatal("garbage must not load")
	}
	// Truncations at various points must fail cleanly, never panic.
	for _, cut := range []int{8, 16, 40, len(img) / 2, len(img) - 3} {
		if cut >= len(img) {
			continue
		}
		if _, err := UnmarshalImage(img[:cut], nil); err == nil {
			t.Fatalf("truncated image (%d bytes) must not load", cut)
		}
	}
	// Bit flips in the header must fail.
	bad := append([]byte(nil), img...)
	bad[0] ^= 0xff
	if _, err := UnmarshalImage(bad, nil); err == nil {
		t.Fatal("wrong magic must not load")
	}
}

func TestImageCorruptionProperty(t *testing.T) {
	fs, _ := buildSample()
	img := fs.MarshalImage(nil)
	f := func(pos uint16, val byte) bool {
		bad := append([]byte(nil), img...)
		bad[int(pos)%len(bad)] ^= val | 1
		// Either it fails to parse, or it parses into a consistent
		// filesystem (the flip hit a benign byte like a name) — it
		// must never produce an inconsistent tree or panic.
		back, err := UnmarshalImage(bad, nil)
		if err != nil {
			return true
		}
		return back.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestImageEmptyFilesystem(t *testing.T) {
	fs := NewFsCore(64<<10, 1024)
	img := fs.MarshalImage(nil)
	back, err := UnmarshalImage(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.UsedBlocks() != 0 {
		t.Fatalf("empty fs image has %d used blocks", back.UsedBlocks())
	}
	names, _, err := back.ReadDir("/")
	if err != nil || len(names) != 0 {
		t.Fatalf("root = %v, %v", names, err)
	}
}
