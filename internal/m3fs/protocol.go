package m3fs

// Request-gate opcodes (client → m3fs, no kernel involvement). Every
// request message is framed as
//
//	op u64 | key u64 | seq u64 | op-specific arguments
//
// where (key, seq) is the client's idempotency token: key identifies
// the client (its PE number), seq is a per-client monotonic counter
// for mutating operations, and seq 0 means "no token" (reads and
// naturally idempotent operations). The service remembers applied
// tokens — across restarts, via the journal — so a retransmitted
// mutation is answered with its original outcome instead of being
// applied twice (docs/RECOVERY.md).
const (
	fsOpen uint64 = iota + 1
	fsClose
	fsStat
	fsFStat
	fsMkdir
	fsUnlink
	fsReadDir
	// fsSync flushes the filesystem to a persistent image (§4.5.8:
	// the layout is "suitable for persistent storage").
	fsSync
	// fsLink creates a hard link; fsRename moves an entry (§4.5.8
	// lists link among m3fs's meta-data operations).
	fsLink
	fsRename
)

// Session-exchange opcodes (client → kernel → m3fs, moving memory
// capabilities).
const (
	// xLocate asks for the extent covering a file offset; the client
	// obtains a memory capability for it.
	xLocate uint64 = iota + 20
	// xAppend reserves new blocks at the end of the file and returns a
	// memory capability for the new extent. Its arguments carry an
	// idempotency token (key, seq) right after the opcode, like the
	// request-gate framing: a deduplicated retry must be answered with
	// the original extent, or the client's file offsets diverge.
	xAppend
	// xGetSGate hands the client a send gate to the request gate,
	// labelled with the session identifier.
	xGetSGate
)

// ServiceName is the name m3fs registers at the kernel.
const ServiceName = "m3fs"

// DefaultAppendBlocks is how many blocks a write appends at once to
// limit fragmentation; the paper's sweet spot (§5.5) is 256.
const DefaultAppendBlocks = 256

// Open flag bits on the wire (match m3.OpenFlags).
const (
	flagRead uint64 = 1 << iota
	flagWrite
	flagCreate
	flagTrunc
	flagAppend
)
