package m3fs

import (
	"bytes"
	"reflect"
	"testing"
)

// sampleRecs is a journal of every record kind, in an order that
// replays cleanly onto an empty filesystem (inode 1 is /a/f, created by
// the JCreate record itself).
func sampleRecs() []JRecord {
	return []JRecord{
		{Kind: JMkdir, Key: 7, Seq: 1, Path: "/a"},
		{Kind: JCreate, Key: 7, Seq: 2, Path: "/a/f"},
		{Kind: JAppend, Key: 7, Seq: 3, Ino: 1, Blocks: 2},
		{Kind: JTrunc, Key: 7, Seq: 4, Ino: 1, Size: 1500},
		{Kind: JLink, Key: 7, Seq: 5, Path: "/a/f", Path2: "/a/g"},
		{Kind: JRename, Key: 7, Seq: 6, Path: "/a/g", Path2: "/a/h"},
		{Kind: JUnlink, Key: 7, Seq: 7, Path: "/a/h"},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	recs := sampleRecs()
	got, err := DecodeJournal(EncodeJournal(recs))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestJournalEmptyAndForeignAreas(t *testing.T) {
	// A zeroed (freshly allocated) area and a foreign-magic area both
	// decode as an empty journal, not an error: that is what the first
	// boot of a journaled service sees.
	for _, area := range [][]byte{
		make([]byte, 4096),
		append(bytes.Repeat([]byte{0xAB}, journalHdrSize), make([]byte, 64)...),
	} {
		recs, err := DecodeJournal(area)
		if err != nil || recs != nil {
			t.Fatalf("DecodeJournal = %v, %v; want nil, nil", recs, err)
		}
	}
	// An area too small to hold even a header is structural damage.
	if _, err := DecodeJournal(make([]byte, journalHdrSize-1)); err == nil {
		t.Fatal("undersized area decoded without error")
	}
}

// TestJournalCrashBeforeAppend models a service that dies after
// applying a mutation in memory but before the journal append reached
// DRAM: the journal simply ends one record earlier, and replay rebuilds
// the pre-mutation state.
func TestJournalCrashBeforeAppend(t *testing.T) {
	recs := sampleRecs()
	fs := NewFsCore(1<<20, 1024)
	if _, err := ReplayJournal(fs, mustDecode(t, EncodeJournal(recs[:2]))); err != nil {
		t.Fatalf("replay: %v", err)
	}
	ino, _, err := fs.Lookup("/a/f")
	if err != nil || ino == nil {
		t.Fatalf("Lookup(/a/f) = %v, %v", ino, err)
	}
	if ino.AllocBlocks != 0 {
		t.Fatalf("file has %d blocks; the append was never journaled", ino.AllocBlocks)
	}
}

// TestJournalCrashBetweenAppendAndCommit writes a record into the area
// past the committed range — a crash between the append and the header
// rewrite — and checks replay never sees it. The client's retry of that
// mutation then lands on a service that has genuinely never applied it.
func TestJournalCrashBetweenAppendAndCommit(t *testing.T) {
	recs := sampleRecs()
	area := EncodeJournal(recs[:2])
	torn := append(area, encodeRecord(recs[2])...) // appended, never committed
	got := mustDecode(t, torn)
	if len(got) != 2 {
		t.Fatalf("decoded %d records from torn journal, want the 2 committed", len(got))
	}
	fs := NewFsCore(1<<20, 1024)
	if _, err := ReplayJournal(fs, got); err != nil {
		t.Fatalf("replay: %v", err)
	}
	ino, _, err := fs.Lookup("/a/f")
	if err != nil {
		t.Fatalf("Lookup(/a/f): %v", err)
	}
	if ino.AllocBlocks != 0 {
		t.Fatal("uncommitted append was replayed")
	}
}

// TestJournalDoubleReplayIdempotent replays the same journal twice —
// a crash during recovery forces a second replay — and checks both
// replays build bit-identical filesystems from the same base.
func TestJournalDoubleReplayIdempotent(t *testing.T) {
	recs := sampleRecs()
	var images [][]byte
	var tokens []int
	for i := 0; i < 2; i++ {
		fs := NewFsCore(1<<20, 1024)
		applied, err := ReplayJournal(fs, recs)
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if err := fs.CheckInvariants(); err != nil {
			t.Fatalf("replay %d invariants: %v", i, err)
		}
		images = append(images, fs.MarshalImage(nil))
		tokens = append(tokens, len(applied))
	}
	if !bytes.Equal(images[0], images[1]) {
		t.Fatal("two replays of the same journal built different filesystems")
	}
	if tokens[0] != len(recs) || tokens[0] != tokens[1] {
		t.Fatalf("idempotency-token maps differ: %d vs %d (want %d)", tokens[0], tokens[1], len(recs))
	}
}

// TestJournalStructuralDamage covers the decode errors: a committed
// range overrunning the area, a truncated record, and an unknown kind.
func TestJournalStructuralDamage(t *testing.T) {
	recs := sampleRecs()
	clean := EncodeJournal(recs)

	overrun := append([]byte(nil), clean...)
	copy(overrun[:journalHdrSize], encodeJournalHeader(len(clean))) // commits past the end
	if _, err := DecodeJournal(overrun); err == nil {
		t.Fatal("overrunning committed range decoded without error")
	}

	truncated := append([]byte(nil), clean[:len(clean)-3]...)
	copy(truncated[:journalHdrSize], encodeJournalHeader(len(truncated)-journalHdrSize))
	if _, err := DecodeJournal(truncated); err == nil {
		t.Fatal("truncated record decoded without error")
	}

	unknown := EncodeJournal([]JRecord{{Kind: 99, Path: "/x"}})
	if _, err := DecodeJournal(unknown); err == nil {
		t.Fatal("unknown record kind decoded without error")
	}

	versioned := append([]byte(nil), clean...)
	versioned[8] = 2 // bump the little-endian version word
	if _, err := DecodeJournal(versioned); err == nil {
		t.Fatal("future journal version decoded without error")
	}
}

// TestJournalReplayRejectsForeignJournal checks that a journal whose
// records do not apply to the given base (here: an append to an inode
// the base never allocated) is an error, not a silent skip.
func TestJournalReplayRejectsForeignJournal(t *testing.T) {
	fs := NewFsCore(1<<20, 1024)
	_, err := ReplayJournal(fs, []JRecord{{Kind: JAppend, Ino: 42, Blocks: 1}})
	if err == nil {
		t.Fatal("append to a nonexistent inode replayed without error")
	}
}

func mustDecode(t *testing.T, area []byte) []JRecord {
	t.Helper()
	recs, err := DecodeJournal(area)
	if err != nil {
		t.Fatalf("DecodeJournal: %v", err)
	}
	return recs
}
