package m3fs

import (
	"reflect"
	"testing"
)

// FuzzJournal hammers DecodeJournal with arbitrary journal areas. The
// journal lives in a DRAM region a crashing service may have torn
// writes into, so the decoder must be total: any input either decodes
// (possibly as the empty journal — that is what a zeroed or
// foreign-magic area means) or returns an error, and it never panics.
// Successfully decoded journals must round-trip through EncodeJournal,
// pinning the wire framing.
func FuzzJournal(f *testing.F) {
	f.Add(EncodeJournal(sampleRecs()))
	f.Add(EncodeJournal(nil))
	f.Add(make([]byte, journalHdrSize))
	f.Add([]byte{})
	// A torn journal: one record appended past the committed range.
	torn := EncodeJournal(sampleRecs()[:2])
	f.Add(append(torn, encodeRecord(sampleRecs()[2])...))
	f.Fuzz(func(t *testing.T, area []byte) {
		recs, err := DecodeJournal(area)
		if err != nil {
			return
		}
		reenc := EncodeJournal(recs)
		got, err := DecodeJournal(reenc)
		if err != nil {
			t.Fatalf("re-encoded journal does not decode: %v", err)
		}
		if !reflect.DeepEqual(got, recs) {
			t.Fatalf("journal does not round-trip:\n got %+v\nwant %+v", got, recs)
		}
	})
}
