package m3fs

import "testing"

func TestHardLinkSharesInode(t *testing.T) {
	fs := newFS()
	ino, _, err := fs.Create("/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Append(ino, 4, false); err != nil {
		t.Fatal(err)
	}
	fs.Truncate(ino, 4096)
	if _, err := fs.Link("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	a, _, _ := fs.Lookup("/a")
	b, _, _ := fs.Lookup("/b")
	if a != b {
		t.Fatal("link does not share the inode")
	}
	if a.Nlink != 2 {
		t.Fatalf("nlink = %d, want 2", a.Nlink)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Unlinking one name keeps the data.
	if _, err := fs.Unlink("/a"); err != nil {
		t.Fatal(err)
	}
	if fs.UsedBlocks() != 4 {
		t.Fatalf("blocks freed too early: %d", fs.UsedBlocks())
	}
	if _, _, err := fs.Lookup("/b"); err != nil {
		t.Fatal("surviving link broken")
	}
	// Unlinking the last name frees everything.
	if _, err := fs.Unlink("/b"); err != nil {
		t.Fatal(err)
	}
	if fs.UsedBlocks() != 0 {
		t.Fatalf("blocks leaked: %d", fs.UsedBlocks())
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkErrors(t *testing.T) {
	fs := newFS()
	_, _ = fs.Mkdir("/d")
	_, _, _ = fs.Create("/f")
	if _, err := fs.Link("/d", "/d2"); err == nil {
		t.Fatal("linking a directory must fail")
	}
	if _, err := fs.Link("/missing", "/x"); err == nil {
		t.Fatal("linking a missing file must fail")
	}
	if _, err := fs.Link("/f", "/d"); err == nil {
		t.Fatal("link over existing name must fail")
	}
}

func TestRenameFileAndDir(t *testing.T) {
	fs := newFS()
	_, _ = fs.Mkdir("/src")
	_, _ = fs.Mkdir("/dst")
	ino, _, _ := fs.Create("/src/f")
	_, _ = fs.Append(ino, 1, false)
	fs.Truncate(ino, 100)
	if _, err := fs.Rename("/src/f", "/dst/g"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Lookup("/src/f"); err == nil {
		t.Fatal("old name still resolves")
	}
	got, _, err := fs.Lookup("/dst/g")
	if err != nil || got != ino {
		t.Fatalf("rename lost the inode: %v", err)
	}
	// Rename a directory with contents.
	if _, err := fs.Rename("/src", "/dst/moved"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Lookup("/dst/moved"); err != nil {
		t.Fatal(err)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRenameIntoItselfRefused(t *testing.T) {
	fs := newFS()
	_, _ = fs.Mkdir("/a")
	_, _ = fs.Mkdir("/a/b")
	if _, err := fs.Rename("/a", "/a/b/a2"); err == nil {
		t.Fatal("moving a directory into its own subtree must fail")
	}
	if _, err := fs.Rename("/missing", "/x"); err == nil {
		t.Fatal("renaming a missing entry must fail")
	}
	_, _, _ = fs.Create("/exists")
	if _, err := fs.Rename("/a", "/exists"); err == nil {
		t.Fatal("renaming onto an existing name must fail")
	}
}

func TestLinkSurvivesImage(t *testing.T) {
	fs := newFS()
	ino, _, _ := fs.Create("/orig")
	_, _ = fs.Append(ino, 2, false)
	fs.Truncate(ino, 2048)
	_, _ = fs.Link("/orig", "/alias")
	back, err := UnmarshalImage(fs.MarshalImage(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _, _ := back.Lookup("/orig")
	b, _, _ := back.Lookup("/alias")
	if a == nil || a != b || a.Nlink != 2 {
		t.Fatal("hard link lost through the image")
	}
}
