package m3fs

import (
	"fmt"
	"sort"

	"repro/internal/kif"
)

// On-disk image format. The paper chose m3fs's organization "to be
// suitable for persistent storage as well" (§4.5.8): superblock, block
// bitmap, inode table with extents, and directories pointing to
// inodes. MarshalImage serializes exactly that, together with the used
// data blocks, so a filesystem can be dumped and later mounted from
// the image (the service loads it into DRAM first — the buffer cache —
// as the paper describes for persistent files).
//
// Layout (all fields little endian, via the kif streams):
//
//	superblock: magic, version, blockSize, totalBlocks, nextIno, rootIno
//	inode table: one record per inode (number, type, size, extents)
//	directory table: one record per directory entry (dir, name, child)
//	data: one record per used block (block number, blockSize bytes)

// imageMagic identifies an m3fs image.
const imageMagic = 0x4d334653 // "M3FS"

// imageVersion is bumped on format changes.
const imageVersion = 2

// MarshalImage serializes the filesystem. blockData returns the
// content of a used block (may be nil to dump metadata only; the
// bitmap still records the blocks as used).
func (fs *FsCore) MarshalImage(blockData func(block int) []byte) []byte {
	var o kif.OStream
	o.U64(imageMagic).U64(imageVersion)
	o.U64(uint64(fs.BlockSize)).U64(uint64(fs.TotalBlocks))
	o.U64(fs.nextIno).U64(fs.root.Ino)

	// Inode table, sorted for a deterministic image.
	inos := make([]uint64, 0, len(fs.inodes))
	for ino := range fs.inodes {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	o.U64(uint64(len(inos)))
	for _, n := range inos {
		ino := fs.inodes[n]
		o.U64(ino.Ino)
		if ino.Dir {
			o.U64(1)
		} else {
			o.U64(0)
		}
		o.U64(uint64(ino.Nlink))
		o.U64(uint64(ino.Size))
		o.U64(uint64(len(ino.Extents)))
		for _, e := range ino.Extents {
			o.U64(uint64(e.Start)).U64(uint64(e.Blocks))
		}
	}

	// Directory table.
	type dent struct {
		dir   uint64
		name  string
		child uint64
	}
	var dents []dent
	for _, n := range inos {
		ino := fs.inodes[n]
		if !ino.Dir {
			continue
		}
		names := make([]string, 0, len(ino.entries))
		for name := range ino.entries {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			dents = append(dents, dent{dir: ino.Ino, name: name, child: ino.entries[name]})
		}
	}
	o.U64(uint64(len(dents)))
	for _, d := range dents {
		o.U64(d.dir).Str(d.name).U64(d.child)
	}

	// Data blocks.
	var used []int
	for b, set := range fs.bitmap {
		if set {
			used = append(used, b)
		}
	}
	o.U64(uint64(len(used)))
	for _, b := range used {
		o.U64(uint64(b))
		if blockData != nil {
			o.Blob(blockData(b))
		} else {
			o.Blob(nil)
		}
	}
	return o.Bytes()
}

// UnmarshalImage reconstructs a filesystem from an image. blockSink
// (may be nil) receives the content of each used data block, e.g. to
// write it into the DRAM region backing the mounted filesystem.
func UnmarshalImage(data []byte, blockSink func(block int, content []byte) error) (*FsCore, error) {
	is := kif.NewIStream(data)
	if is.U64() != imageMagic {
		return nil, fmt.Errorf("m3fs: not an m3fs image")
	}
	if v := is.U64(); v != imageVersion {
		return nil, fmt.Errorf("m3fs: unsupported image version %d", v)
	}
	blockSize := int(is.U64())
	totalBlocks := int(is.U64())
	nextIno := is.U64()
	rootIno := is.U64()
	if is.Err() != nil || blockSize <= 0 || blockSize > 1<<20 ||
		totalBlocks <= 0 || totalBlocks > 1<<28 {
		return nil, fmt.Errorf("m3fs: corrupt superblock")
	}
	fs := &FsCore{
		BlockSize:   blockSize,
		TotalBlocks: totalBlocks,
		inodes:      make(map[uint64]*Inode),
		bitmap:      make([]bool, totalBlocks),
	}

	nInodes := int(is.U64())
	if is.Err() != nil || nInodes < 0 || nInodes > totalBlocks+1 {
		return nil, fmt.Errorf("m3fs: corrupt inode count")
	}
	for i := 0; i < nInodes; i++ {
		ino := &Inode{Ino: is.U64(), Dir: is.U64() != 0}
		ino.Nlink = int(is.U64())
		ino.Size = int64(is.U64())
		if ino.Dir {
			ino.entries = make(map[string]uint64)
		}
		nExt := int(is.U64())
		if is.Err() != nil || nExt < 0 || nExt > totalBlocks {
			return nil, fmt.Errorf("m3fs: corrupt extent count for inode %d", ino.Ino)
		}
		for e := 0; e < nExt; e++ {
			ext := Extent{Start: int(is.U64()), Blocks: int(is.U64())}
			if ext.Start < 0 || ext.Blocks <= 0 || ext.Start+ext.Blocks > totalBlocks {
				return nil, fmt.Errorf("m3fs: inode %d extent out of bounds", ino.Ino)
			}
			ino.Extents = append(ino.Extents, ext)
			ino.AllocBlocks += ext.Blocks
			for b := ext.Start; b < ext.Start+ext.Blocks; b++ {
				if fs.bitmap[b] {
					return nil, fmt.Errorf("m3fs: block %d doubly allocated in image", b)
				}
				fs.bitmap[b] = true
				fs.used++
			}
		}
		if _, dup := fs.inodes[ino.Ino]; dup {
			return nil, fmt.Errorf("m3fs: duplicate inode %d", ino.Ino)
		}
		fs.inodes[ino.Ino] = ino
	}
	fs.nextIno = nextIno
	fs.root = fs.inodes[rootIno]
	if fs.root == nil || !fs.root.Dir {
		return nil, fmt.Errorf("m3fs: image has no root directory")
	}

	nDents := int(is.U64())
	if is.Err() != nil || nDents < 0 || nDents > nInodes*1024 {
		return nil, fmt.Errorf("m3fs: corrupt directory table")
	}
	for i := 0; i < nDents; i++ {
		dirIno := is.U64()
		name := is.Str()
		child := is.U64()
		dir := fs.inodes[dirIno]
		if is.Err() != nil || dir == nil || !dir.Dir || fs.inodes[child] == nil || name == "" {
			return nil, fmt.Errorf("m3fs: corrupt directory entry %d", i)
		}
		dir.entries[name] = child
	}

	nBlocks := int(is.U64())
	if is.Err() != nil || nBlocks < 0 || nBlocks > totalBlocks {
		return nil, fmt.Errorf("m3fs: corrupt data block count")
	}
	for i := 0; i < nBlocks; i++ {
		b := int(is.U64())
		content := is.Blob()
		if is.Err() != nil || b < 0 || b >= totalBlocks || len(content) > blockSize {
			return nil, fmt.Errorf("m3fs: corrupt data block record %d", i)
		}
		if blockSink != nil && len(content) > 0 {
			if err := blockSink(b, content); err != nil {
				return nil, err
			}
		}
	}
	if err := fs.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("m3fs: image fails fsck: %w", err)
	}
	return fs, nil
}

// DumpImage serializes the running service's filesystem including file
// contents, read through the service's memory gate (timed DTU
// transfers, like writing the image out to storage).
func (s *Service) DumpImage() ([]byte, error) {
	var rerr error
	img := s.fs.MarshalImage(func(block int) []byte {
		buf := make([]byte, s.fs.BlockSize)
		if err := s.mem.Read(buf, block*s.fs.BlockSize); err != nil && rerr == nil {
			rerr = err
		}
		return buf
	})
	return img, rerr
}

// loadImage replaces the service's filesystem with the image's,
// writing the data blocks into the DRAM region (the paper: "m3fs would
// first load the file into DRAM, i.e., into the buffer cache").
func (s *Service) loadImage(img []byte) error {
	fs, err := UnmarshalImage(img, func(block int, content []byte) error {
		return s.mem.Write(content, block*s.fs.BlockSize)
	})
	if err != nil {
		return err
	}
	if fs.BlockSize != s.fs.BlockSize || fs.TotalBlocks > s.fs.TotalBlocks {
		return fmt.Errorf("m3fs: image geometry %d/%d does not fit region %d/%d",
			fs.BlockSize, fs.TotalBlocks, s.fs.BlockSize, s.fs.TotalBlocks)
	}
	// Adopt the image's metadata but keep the region's full capacity.
	fs.bitmap = append(fs.bitmap, make([]bool, s.fs.TotalBlocks-fs.TotalBlocks)...)
	fs.TotalBlocks = s.fs.TotalBlocks
	s.fs = fs
	return nil
}
