package m3fs

import (
	"fmt"

	"repro/internal/kif"
)

// The metadata journal is a write-ahead log of logical filesystem
// mutations, kept in the tail of the service's (stable) DRAM region so
// it survives a service crash. Layout:
//
//	header (24 bytes): magic u64 | version u64 | committedLen u64
//	records: committedLen bytes of length-delimited records
//
// Each record is a kif blob: u64 byte length, then a payload of
//
//	kind u64 | key u64 | seq u64 | kind-specific fields
//
// (key, seq) is the client's idempotency token (zero seq = none). A
// mutation is made durable in two DRAM writes: append the record at
// header+committedLen, then commit by rewriting the header with the
// grown committedLen. A crash between the two leaves the record
// outside the committed range, where replay never looks — so the
// journal is always a prefix of successfully applied mutations, and
// the client's retry of the uncommitted one lands on a service that
// has genuinely never seen it.
//
// Replay rebuilds the in-memory FsCore from the boot image (or an
// empty filesystem) by re-applying the committed records in order.
// Since it only ever reads the journal and reconstructs from scratch,
// replaying twice — e.g. after a crash during replay — is trivially
// idempotent: every replay starts from the same base and the same
// committed prefix. File *data* needs no journaling at all: clients
// write it via RDMA straight into the stable region, where it survives
// alongside the journal.
const (
	journalMagic   uint64 = 0x4d33464a4f520001 // "M3FJOR" v1 tag
	journalVersion uint64 = 1
	journalHdrSize        = 24

	// DefaultJournalSize is the journal area carved from the region
	// tail when Config.Journal is on and JournalSize is zero.
	DefaultJournalSize = 256 << 10
)

// Journal record kinds: one per logical mutation m3fs accepts.
// Exported so that offline tooling (cmd/m3fsck -selftest) and tests can
// synthesize journals without speaking the wire framing by hand.
const (
	JMkdir uint64 = iota + 1
	JCreate
	JTrunc
	JUnlink
	JLink
	JRename
	JAppend
)

// JRecord is one decoded journal record.
type JRecord struct {
	Kind     uint64
	Key, Seq uint64 // idempotency token (Seq 0 = none)

	// Payload fields (Path/Path2 for mkdir/create/unlink/link/rename,
	// Ino + Size/Blocks/NoMerge for trunc/append). Records are decoded
	// into fresh values by the m3fs service process (or offline m3fsck
	// tooling) and never escape to another goroutine.
	//m3vet:resolve sharedstate owner decoded into fresh values on the m3fs service process; never shared
	Path, Path2 string
	Ino         uint64 //m3vet:resolve sharedstate owner decoded into fresh values on the m3fs service process; never shared
	Size        int64
	Blocks      int //m3vet:resolve sharedstate owner decoded into fresh values on the m3fs service process; never shared
	NoMerge     bool
}

// KindName returns the mnemonic of a record's kind, for human-facing
// journal listings (m3fsck).
func (r JRecord) KindName() string {
	switch r.Kind {
	case JMkdir:
		return "mkdir"
	case JCreate:
		return "create"
	case JTrunc:
		return "trunc"
	case JUnlink:
		return "unlink"
	case JLink:
		return "link"
	case JRename:
		return "rename"
	case JAppend:
		return "append"
	}
	return fmt.Sprintf("kind%d", r.Kind)
}

// token is the dedup key of a client mutation.
type token struct{ key, seq uint64 }

// appliedEntry remembers the outcome of an applied mutation so a
// retransmitted request (reply lost, or lost across a restart) can be
// answered with the original result instead of being applied twice.
type appliedEntry struct {
	ext            Extent //m3vet:resolve sharedstate owner written once by the m3fs service process when the mutation is applied
	extOff, extLen int64
	hasExt         bool //m3vet:resolve sharedstate owner written once by the m3fs service process when the mutation is applied
}

// encodeRecord renders one record in its on-DRAM framing.
func encodeRecord(r JRecord) []byte {
	var p kif.OStream
	p.U64(r.Kind).U64(r.Key).U64(r.Seq)
	switch r.Kind {
	case JMkdir, JCreate, JUnlink:
		p.Str(r.Path)
	case JLink, JRename:
		p.Str(r.Path).Str(r.Path2)
	case JTrunc:
		p.U64(r.Ino).U64(uint64(r.Size))
	case JAppend:
		p.U64(r.Ino).U64(uint64(r.Blocks))
		if r.NoMerge {
			p.U64(1)
		} else {
			p.U64(0)
		}
	}
	var o kif.OStream
	o.Blob(p.Bytes())
	return o.Bytes()
}

// encodeJournalHeader renders the header for a committed length.
func encodeJournalHeader(committed int) []byte {
	var o kif.OStream
	o.U64(journalMagic).U64(journalVersion).U64(uint64(committed))
	return o.Bytes()
}

// EncodeJournal renders records as a fully committed journal area —
// header plus framed records, committedLen covering all of them. It is
// the write-side inverse of DecodeJournal for tooling and tests; the
// live service never uses it (it appends and commits incrementally, see
// service.go).
func EncodeJournal(recs []JRecord) []byte {
	var body []byte
	for _, r := range recs {
		body = append(body, encodeRecord(r)...)
	}
	return append(encodeJournalHeader(len(body)), body...)
}

// decodeRecord parses one record payload.
func decodeRecord(payload []byte) (JRecord, error) {
	is := kif.NewIStream(payload)
	r := JRecord{Kind: is.U64(), Key: is.U64(), Seq: is.U64()}
	switch r.Kind {
	case JMkdir, JCreate, JUnlink:
		r.Path = is.Str()
	case JLink, JRename:
		r.Path = is.Str()
		r.Path2 = is.Str()
	case JTrunc:
		r.Ino = is.U64()
		r.Size = int64(is.U64())
	case JAppend:
		r.Ino = is.U64()
		r.Blocks = int(is.U64())
		r.NoMerge = is.U64() != 0
	default:
		return JRecord{}, fmt.Errorf("m3fs: journal record kind %d unknown", r.Kind)
	}
	if err := is.Err(); err != nil {
		return JRecord{}, fmt.Errorf("m3fs: journal record truncated: %w", err)
	}
	return r, nil
}

// DecodeJournal parses a raw journal area (header plus record space)
// and returns the committed records. A zeroed or foreign-magic area
// decodes as an empty journal — that is what a freshly allocated
// region looks like on first boot. Structural damage (committed range
// beyond the area, truncated or unknown records) is an error; the
// function never panics on arbitrary input (fuzzed in
// journal_fuzz_test.go).
func DecodeJournal(area []byte) ([]JRecord, error) {
	if len(area) < journalHdrSize {
		return nil, fmt.Errorf("m3fs: journal area %d bytes, need at least %d", len(area), journalHdrSize)
	}
	hs := kif.NewIStream(area[:journalHdrSize])
	magic, version, clen := hs.U64(), hs.U64(), int(int64(hs.U64()))
	if magic != journalMagic {
		return nil, nil
	}
	if version != journalVersion {
		return nil, fmt.Errorf("m3fs: journal version %d, want %d", version, journalVersion)
	}
	if clen < 0 || journalHdrSize+clen > len(area) {
		return nil, fmt.Errorf("m3fs: journal commits %d bytes beyond its %d-byte area", clen, len(area))
	}
	var recs []JRecord
	body := area[journalHdrSize : journalHdrSize+clen]
	for pos := 0; pos < len(body); {
		is := kif.NewIStream(body[pos:])
		payload := is.Blob()
		if err := is.Err(); err != nil {
			return nil, fmt.Errorf("m3fs: journal record at %d truncated: %w", pos, err)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
		pos += 8 + len(payload)
	}
	return recs, nil
}

// ReplayJournal re-applies recs, in order, to a filesystem freshly
// built from the boot base, and returns the rebuilt idempotency-token
// map (the same entries the original incarnation held for these
// mutations, append results included). Records were only ever written
// for mutations that succeeded against the same base in the same
// order, so any application failure means the journal does not belong
// to this base — an error, not a tolerable skip.
func ReplayJournal(fs *FsCore, recs []JRecord) (map[token]appliedEntry, error) {
	applied := make(map[token]appliedEntry)
	for i, r := range recs {
		entry := appliedEntry{}
		var err error
		switch r.Kind {
		case JMkdir:
			_, err = fs.Mkdir(r.Path)
		case JCreate:
			_, _, err = fs.Create(r.Path)
		case JUnlink:
			_, err = fs.Unlink(r.Path)
		case JLink:
			_, err = fs.Link(r.Path, r.Path2)
		case JRename:
			_, err = fs.Rename(r.Path, r.Path2)
		case JTrunc:
			ino := fs.Inode(r.Ino)
			if ino == nil {
				err = fmt.Errorf("inode %d not found", r.Ino)
				break
			}
			fs.Truncate(ino, r.Size)
		case JAppend:
			ino := fs.Inode(r.Ino)
			if ino == nil {
				err = fmt.Errorf("inode %d not found", r.Ino)
				break
			}
			var ext Extent
			ext, err = fs.Append(ino, r.Blocks, r.NoMerge)
			if err == nil {
				entry.ext = ext
				entry.extLen = int64(ext.Blocks) * int64(fs.BlockSize)
				entry.extOff = int64(ino.AllocBlocks-ext.Blocks) * int64(fs.BlockSize)
				entry.hasExt = true
			}
		default:
			err = fmt.Errorf("kind %d unknown", r.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("m3fs: journal replay of record %d (kind %d): %w", i, r.Kind, err)
		}
		if r.Seq != 0 {
			applied[token{r.Key, r.Seq}] = entry
		}
	}
	return applied, nil
}
