package m3fs

import "repro/internal/sim"

// Service- and client-side cycle costs, calibrated against the paper's
// §5.4–§5.6 file-operation measurements. Keeping every constant in
// this table (enforced by m3vet's magiccost rule) leaves one place to
// retune and one place to audit against the paper.
const (
	costPerComponent sim.Time = 70  // directory lookup per path component
	costOpen         sim.Time = 450 // fd allocation, inode load
	costClose        sim.Time = 800 // truncation bookkeeping
	costStat         sim.Time = 480 // inode copy-out; stat is better optimized on Linux (§5.6)
	costMkdir        sim.Time = 250
	costUnlink       sim.Time = 250
	costLink         sim.Time = 300
	costRename       sim.Time = 350
	costReadDir      sim.Time = 120  // per chunk of entries
	costLocate       sim.Time = 600  // extent search + cap bookkeeping
	costAppend       sim.Time = 1000 // allocator + extent insert
	costOpenSess     sim.Time = 250
	costExchangeBase sim.Time = 150

	// costMountRetry is the client's back-off while the service has not
	// registered yet (boot races during Mount).
	costMountRetry sim.Time = 1000

	// costJournalAppend is the encode/bookkeeping overhead of one
	// journal record (the two DRAM writes are timed DTU transfers on
	// top of it).
	costJournalAppend sim.Time = 120
	// costJournalReplay is the per-record cost of re-applying the
	// journal after a restart.
	costJournalReplay sim.Time = 90
	// costRecoverRetry is the client's back-off between session
	// re-establishment attempts while the service incarnation it lost
	// has not been restarted yet.
	costRecoverRetry sim.Time = 2000
)
