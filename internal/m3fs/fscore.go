// Package m3fs implements the paper's in-memory filesystem service and
// its libm3 client (§4.5.8).
//
// m3fs is organized like classical UNIX filesystems — superblock,
// inode and block bitmaps, an inode table, and directories pointing to
// inodes — with file data described by extents (start block + block
// count), as in ext4/btrfs. The service only handles meta-data: for
// data access it delegates memory capabilities covering extents to the
// client, which then reads and writes the file contents directly in
// DRAM through its DTU, without involving m3fs (the GoogleFS-like
// separation of meta-data from data).
package m3fs

import (
	"fmt"
	"sort"
	"strings"
)

// Extent is a contiguous run of blocks.
type Extent struct {
	Start  int // first block
	Blocks int //m3vet:resolve sharedstate owner extents are mutated only by the m3fs service process that owns the FsCore
}

// Inode is one file or directory.
type Inode struct {
	Ino     uint64
	Dir     bool
	Size    int64
	Extents []Extent
	// AllocBlocks counts blocks reserved for the file, including
	// preallocation beyond Size (trimmed on close).
	AllocBlocks int
	// Nlink counts directory entries referencing the inode; blocks are
	// freed when the last link goes (hard links, §4.5.8's "link").
	Nlink int

	entries map[string]uint64 // directories
}

// FsCore is the simulator-independent filesystem state: superblock
// parameters, bitmaps, inodes, and directories. The service wraps it
// with the DTU protocol; keeping it separate makes the filesystem
// logic directly unit- and property-testable.
type FsCore struct {
	BlockSize   int
	TotalBlocks int

	bitmap  []bool // block allocation bitmap
	used    int
	inodes  map[uint64]*Inode
	nextIno uint64
	root    *Inode
}

// NewFsCore formats a filesystem over size bytes with the given block
// size.
func NewFsCore(size, blockSize int) *FsCore {
	if blockSize <= 0 {
		blockSize = 1024
	}
	fs := &FsCore{
		BlockSize:   blockSize,
		TotalBlocks: size / blockSize,
		inodes:      make(map[uint64]*Inode),
	}
	fs.bitmap = make([]bool, fs.TotalBlocks)
	fs.root = fs.newInode(true)
	return fs
}

func (fs *FsCore) newInode(dir bool) *Inode {
	fs.nextIno++
	ino := &Inode{Ino: fs.nextIno, Dir: dir, Nlink: 1}
	if dir {
		ino.entries = make(map[string]uint64)
	}
	fs.inodes[ino.Ino] = ino
	return ino
}

// Root returns the root directory inode.
func (fs *FsCore) Root() *Inode { return fs.root }

// Inode returns an inode by number.
func (fs *FsCore) Inode(ino uint64) *Inode { return fs.inodes[ino] }

// UsedBlocks returns the allocated block count.
func (fs *FsCore) UsedBlocks() int { return fs.used }

// split cleans a path into components.
func split(path string) []string {
	var out []string
	for _, c := range strings.Split(path, "/") {
		if c != "" && c != "." {
			out = append(out, c)
		}
	}
	return out
}

// Lookup resolves path to an inode. The returned depth is the number
// of components walked (for cost accounting).
func (fs *FsCore) Lookup(path string) (ino *Inode, depth int, err error) {
	cur := fs.root
	comps := split(path)
	for i, c := range comps {
		if !cur.Dir {
			return nil, i, fmt.Errorf("m3fs: %s: not a directory", path)
		}
		next, ok := cur.entries[c]
		if !ok {
			return nil, i, fmt.Errorf("m3fs: %s: no such file or directory", path)
		}
		cur = fs.inodes[next]
	}
	return cur, len(comps), nil
}

// lookupParent resolves all but the last component.
func (fs *FsCore) lookupParent(path string) (*Inode, string, int, error) {
	comps := split(path)
	if len(comps) == 0 {
		return nil, "", 0, fmt.Errorf("m3fs: %s: invalid path", path)
	}
	dirPath := strings.Join(comps[:len(comps)-1], "/")
	dir, depth, err := fs.Lookup(dirPath)
	if err != nil {
		return nil, "", depth, err
	}
	if !dir.Dir {
		return nil, "", depth, fmt.Errorf("m3fs: %s: not a directory", dirPath)
	}
	return dir, comps[len(comps)-1], depth, nil
}

// Create makes a new regular file at path (parent must exist).
func (fs *FsCore) Create(path string) (*Inode, int, error) {
	dir, name, depth, err := fs.lookupParent(path)
	if err != nil {
		return nil, depth, err
	}
	if _, exists := dir.entries[name]; exists {
		return nil, depth, fmt.Errorf("m3fs: %s: already exists", path)
	}
	ino := fs.newInode(false)
	dir.entries[name] = ino.Ino
	return ino, depth, nil
}

// Mkdir makes a new directory at path.
func (fs *FsCore) Mkdir(path string) (int, error) {
	dir, name, depth, err := fs.lookupParent(path)
	if err != nil {
		return depth, err
	}
	if _, exists := dir.entries[name]; exists {
		return depth, fmt.Errorf("m3fs: %s: already exists", path)
	}
	ino := fs.newInode(true)
	dir.entries[name] = ino.Ino
	return depth, nil
}

// Unlink removes the directory entry at path; the inode and its
// blocks are freed when the last link goes.
func (fs *FsCore) Unlink(path string) (int, error) {
	dir, name, depth, err := fs.lookupParent(path)
	if err != nil {
		return depth, err
	}
	inoNum, ok := dir.entries[name]
	if !ok {
		return depth, fmt.Errorf("m3fs: %s: no such file or directory", path)
	}
	ino := fs.inodes[inoNum]
	if ino.Dir && len(ino.entries) > 0 {
		return depth, fmt.Errorf("m3fs: %s: directory not empty", path)
	}
	delete(dir.entries, name)
	ino.Nlink--
	if ino.Nlink <= 0 {
		for _, e := range ino.Extents {
			fs.freeRange(e.Start, e.Blocks)
		}
		delete(fs.inodes, inoNum)
	}
	return depth, nil
}

// Link creates a second directory entry for the file at oldPath (hard
// link). Directories cannot be linked.
func (fs *FsCore) Link(oldPath, newPath string) (int, error) {
	ino, depth, err := fs.Lookup(oldPath)
	if err != nil {
		return depth, err
	}
	if ino.Dir {
		return depth, fmt.Errorf("m3fs: %s: cannot link a directory", oldPath)
	}
	dir, name, d2, err := fs.lookupParent(newPath)
	if err != nil {
		return depth + d2, err
	}
	if _, exists := dir.entries[name]; exists {
		return depth + d2, fmt.Errorf("m3fs: %s: already exists", newPath)
	}
	dir.entries[name] = ino.Ino
	ino.Nlink++
	return depth + d2, nil
}

// Rename moves the entry at oldPath to newPath, replacing nothing (a
// destination that exists is an error, keeping the operation simple
// and explicit).
func (fs *FsCore) Rename(oldPath, newPath string) (int, error) {
	oldDir, oldName, d1, err := fs.lookupParent(oldPath)
	if err != nil {
		return d1, err
	}
	inoNum, ok := oldDir.entries[oldName]
	if !ok {
		return d1, fmt.Errorf("m3fs: %s: no such file or directory", oldPath)
	}
	newDir, newName, d2, err := fs.lookupParent(newPath)
	if err != nil {
		return d1 + d2, err
	}
	if _, exists := newDir.entries[newName]; exists {
		return d1 + d2, fmt.Errorf("m3fs: %s: already exists", newPath)
	}
	// Moving a directory under itself would orphan the subtree.
	moving := fs.inodes[inoNum]
	if moving.Dir && fs.isAncestor(moving, newDir) {
		return d1 + d2, fmt.Errorf("m3fs: cannot move %s into itself", oldPath)
	}
	delete(oldDir.entries, oldName)
	newDir.entries[newName] = inoNum
	return d1 + d2, nil
}

// isAncestor reports whether dir is anc or lies below anc.
func (fs *FsCore) isAncestor(anc, dir *Inode) bool {
	if anc == dir {
		return true
	}
	//m3vet:allow nodeterminism boolean reachability query; the result is independent of visit order
	for _, child := range anc.entries {
		c := fs.inodes[child]
		if c != nil && c.Dir && fs.isAncestor(c, dir) {
			return true
		}
	}
	return false
}

// ReadDir lists the entries of the directory at path, sorted order not
// guaranteed (callers sort if needed).
func (fs *FsCore) ReadDir(path string) ([]string, *Inode, error) {
	dir, _, err := fs.Lookup(path)
	if err != nil {
		return nil, nil, err
	}
	if !dir.Dir {
		return nil, nil, fmt.Errorf("m3fs: %s: not a directory", path)
	}
	names := make([]string, 0, len(dir.entries))
	for n := range dir.entries {
		names = append(names, n)
	}
	return names, dir, nil
}

// Child returns the inode of a directory entry.
func (fs *FsCore) Child(dir *Inode, name string) *Inode {
	if !dir.Dir {
		return nil
	}
	if n, ok := dir.entries[name]; ok {
		return fs.inodes[n]
	}
	return nil
}

// allocRange finds n free contiguous blocks starting the search at
// hint, marking them used. It returns the first block, or -1.
func (fs *FsCore) allocRange(n, hint int) int {
	if n <= 0 || fs.used+n > fs.TotalBlocks {
		return -1
	}
	run := 0
	for i := hint; i < fs.TotalBlocks; i++ {
		if fs.bitmap[i] {
			run = 0
			continue
		}
		run++
		if run == n {
			start := i - n + 1
			for j := start; j <= i; j++ {
				fs.bitmap[j] = true
			}
			fs.used += n
			return start
		}
	}
	if hint > 0 {
		return fs.allocRange(n, 0)
	}
	return -1
}

func (fs *FsCore) freeRange(start, n int) {
	for i := start; i < start+n; i++ {
		if fs.bitmap[i] {
			fs.bitmap[i] = false
			fs.used--
		}
	}
}

// Append reserves blocks extra blocks for ino, extending the last
// extent in place when the blocks happen to be contiguous (unless
// noMerge forces a separate extent, used by the fragmentation
// experiment). It returns the extent index covering the new space.
func (fs *FsCore) Append(ino *Inode, blocks int, noMerge bool) (Extent, error) {
	hint := 0
	if n := len(ino.Extents); n > 0 {
		hint = ino.Extents[n-1].Start + ino.Extents[n-1].Blocks
	}
	start := fs.allocRange(blocks, hint)
	if start < 0 {
		return Extent{}, fmt.Errorf("m3fs: no space for %d blocks", blocks)
	}
	ino.AllocBlocks += blocks
	if n := len(ino.Extents); !noMerge && n > 0 {
		last := &ino.Extents[n-1]
		if last.Start+last.Blocks == start {
			last.Blocks += blocks
			return Extent{Start: start, Blocks: blocks}, nil
		}
	}
	ino.Extents = append(ino.Extents, Extent{Start: start, Blocks: blocks})
	return Extent{Start: start, Blocks: blocks}, nil
}

// Truncate trims preallocated blocks beyond size (the close operation
// "truncates it to the actually used space").
func (fs *FsCore) Truncate(ino *Inode, size int64) {
	if size > ino.Size {
		ino.Size = size
	}
	needed := int((size + int64(fs.BlockSize) - 1) / int64(fs.BlockSize))
	excess := ino.AllocBlocks - needed
	for excess > 0 && len(ino.Extents) > 0 {
		last := &ino.Extents[len(ino.Extents)-1]
		trim := last.Blocks
		if trim > excess {
			trim = excess
		}
		fs.freeRange(last.Start+last.Blocks-trim, trim)
		last.Blocks -= trim
		ino.AllocBlocks -= trim
		excess -= trim
		if last.Blocks == 0 {
			ino.Extents = ino.Extents[:len(ino.Extents)-1]
		}
	}
	ino.Size = size
}

// FindExtent returns the extent containing byte offset off, its index,
// and the byte range [extOff, extOff+extLen) of the file it covers.
// Preallocated space past Size is addressable (for writers).
func (fs *FsCore) FindExtent(ino *Inode, off int64) (ext Extent, extOff, extLen int64, ok bool) {
	var cur int64
	bs := int64(fs.BlockSize)
	for _, e := range ino.Extents {
		l := int64(e.Blocks) * bs
		if off >= cur && off < cur+l {
			return e, cur, l, true
		}
		cur += l
	}
	return Extent{}, 0, 0, false
}

// CheckInvariants validates the block accounting: every extent within
// bounds, no two extents overlapping, bitmap consistent with extents.
// Used by property tests ("fsck").
func (fs *FsCore) CheckInvariants() error {
	// Iterate inodes in number order: on an inconsistent image the
	// error text names the first offending inode, and that choice must
	// not depend on Go's randomized map order — the message flows into
	// service replies and from there into the deterministic trace.
	// (m3vet's timetaint pass caught the previous map-range version.)
	nums := make([]uint64, 0, len(fs.inodes))
	for n := range fs.inodes {
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })

	seen := make(map[int]uint64)
	total := 0
	for _, n := range nums {
		ino := fs.inodes[n]
		alloc := 0
		for _, e := range ino.Extents {
			if e.Start < 0 || e.Blocks <= 0 || e.Start+e.Blocks > fs.TotalBlocks {
				return fmt.Errorf("m3fs: inode %d extent %v out of bounds", ino.Ino, e)
			}
			for b := e.Start; b < e.Start+e.Blocks; b++ {
				if other, dup := seen[b]; dup {
					return fmt.Errorf("m3fs: block %d shared by inodes %d and %d", b, other, ino.Ino)
				}
				seen[b] = ino.Ino
				if !fs.bitmap[b] {
					return fmt.Errorf("m3fs: block %d used by inode %d but free in bitmap", b, ino.Ino)
				}
				total++
			}
			alloc += e.Blocks
		}
		if alloc != ino.AllocBlocks {
			return fmt.Errorf("m3fs: inode %d AllocBlocks=%d but extents hold %d", ino.Ino, ino.AllocBlocks, alloc)
		}
	}
	if total != fs.used {
		return fmt.Errorf("m3fs: bitmap count %d != extent total %d", fs.used, total)
	}
	// Link counts must match the directory entries referencing each
	// inode (the root has no entry but one implicit link).
	refs := make(map[uint64]int)
	//m3vet:allow nodeterminism reference counting is commutative
	for _, ino := range fs.inodes {
		//m3vet:allow nodeterminism reference counting is commutative
		for _, child := range ino.entries {
			refs[child]++
		}
	}
	for _, n := range nums {
		ino := fs.inodes[n]
		want := refs[n]
		if ino == fs.root {
			want++
		}
		if ino.Nlink != want {
			return fmt.Errorf("m3fs: inode %d has nlink %d but %d references", n, ino.Nlink, want)
		}
	}
	return nil
}
