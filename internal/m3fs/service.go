package m3fs

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/kif"
	"repro/internal/m3"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tile"
)

// Metric names registered with the obs registry (docs/OBSERVABILITY.md).
const (
	// MJournalAppends counts committed journal records.
	MJournalAppends = "m3fs_journal_appends_total"
	// MSessionReopens counts client-side session re-establishments
	// after a service restart.
	MSessionReopens = "m3fs_session_reopens_total"
)

// Config parameterizes the m3fs service.
type Config struct {
	// RegionSize is the DRAM region backing the filesystem (default 32 MiB).
	RegionSize int //m3vet:resolve sharedstate owner defaulted once at service start, read-only thereafter
	// BlockSize (default 1 KiB, the paper's benchmark configuration).
	BlockSize int //m3vet:resolve sharedstate owner defaulted once at service start, read-only thereafter
	// AppendBlocks is the per-append preallocation (default 256).
	AppendBlocks int //m3vet:resolve sharedstate owner defaulted once at service start, read-only thereafter
	// Image, when set, is a filesystem image the service loads into
	// its DRAM region at start (boot from persistent storage).
	Image []byte
	// Journal enables the metadata write-ahead journal in the tail of
	// the region: the region is then requested as supervisor-stable
	// memory, and a restarted incarnation rebuilds the filesystem from
	// Image plus the committed journal records (docs/RECOVERY.md).
	Journal bool
	// JournalSize is the journal area carved from the region tail
	// (default DefaultJournalSize).
	JournalSize int //m3vet:resolve sharedstate owner defaulted once at service start, read-only thereafter
}

func (c *Config) defaults() {
	if c.RegionSize == 0 {
		c.RegionSize = 32 << 20
	}
	if c.BlockSize == 0 {
		c.BlockSize = 1024
	}
	if c.AppendBlocks == 0 {
		c.AppendBlocks = DefaultAppendBlocks
	}
	if c.Journal && c.JournalSize == 0 {
		c.JournalSize = DefaultJournalSize
	}
}

// session is the per-client service state.
type session struct {
	ident  uint64
	files  map[uint64]*openFile
	nextFD uint64
}

type openFile struct {
	ino      *Inode
	writable bool
}

// Service is the m3fs server state, owned by the service program.
type Service struct {
	cfg  Config
	env  *m3.Env
	fs   *FsCore
	mem  *m3.MemGate // DRAM region backing the filesystem
	ctrl *m3.RecvGate
	reqs *m3.RecvGate

	sessions  map[uint64]*session
	nextIdent uint64

	// applied remembers the outcome of every tokened mutation (lookup
	// only, so it stays off m3vet's nondeterminism radar); with the
	// journal on it is rebuilt across restarts by replay.
	applied map[token]appliedEntry
	// jbase/jsize locate the journal area inside the region (jsize 0 =
	// journaling off); jcommitted is the committed record bytes.
	jbase, jsize, jcommitted int

	// Stats for the evaluation.
	Requests  uint64
	Exchanges uint64
	// RepliesLost counts replies abandoned because the client became
	// unreachable (fault injection).
	RepliesLost uint64
	// Recovered reports that Start found a committed journal from an
	// earlier incarnation; ReplayedRecords counts its records.
	Recovered       bool
	ReplayedRecords int
	// Deduped counts retransmitted mutations answered from the applied
	// map instead of being re-executed.
	Deduped uint64

	mJournalAppends *obs.Counter

	// SyncedImage holds the image written by the last sync request:
	// the stand-in for the persistent storage device the prototype
	// platform lacks.
	SyncedImage []byte
}

// Program returns the m3fs service program for kern.StartInit. The
// ready callback (may be nil) fires once the service is registered.
func Program(kern *core.Kernel, cfg Config, ready func(*Service)) core.Program {
	return func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		svc, err := Start(env, cfg)
		if err != nil {
			if errors.Is(err, kif.ErrTimeout) {
				// Under fault injection the service may fail to reach
				// the kernel during startup; that is a dead service,
				// not a broken simulation.
				env.Exit(1)
				return
			}
			panic(fmt.Sprintf("m3fs: start failed: %v", err))
		}
		if ready != nil {
			ready(svc)
		}
		svc.Serve()
	}
}

// Start allocates the backing region, formats the filesystem (or
// rebuilds it from the journal left by a previous incarnation), and
// registers the service at the kernel.
func Start(env *m3.Env, cfg Config) (*Service, error) {
	cfg.defaults()
	s := &Service{
		cfg:      cfg,
		env:      env,
		sessions: make(map[uint64]*session),
		applied:  make(map[token]appliedEntry),
	}
	if tr := env.Ctx.PE.Obs(); tr.On() {
		s.mJournalAppends = tr.Metrics().Counter(MJournalAppends, -1)
	}
	fsBytes := cfg.RegionSize
	var err error
	if cfg.Journal {
		if cfg.JournalSize < journalHdrSize || cfg.JournalSize >= cfg.RegionSize {
			return nil, fmt.Errorf("m3fs: journal size %d does not fit region %d", cfg.JournalSize, cfg.RegionSize)
		}
		fsBytes = cfg.RegionSize - cfg.JournalSize
		// A journaled region must keep its address (and contents)
		// across incarnations, or the journal would vanish with the
		// crash it exists to survive.
		s.mem, err = env.ReqMemStable(cfg.RegionSize, dtu.PermRW)
	} else {
		s.mem, err = env.ReqMem(cfg.RegionSize, dtu.PermRW)
	}
	if err != nil {
		return nil, fmt.Errorf("m3fs: region: %w", err)
	}
	s.fs = NewFsCore(fsBytes, cfg.BlockSize)
	s.ctrl, err = env.NewRecvGate(256, 8)
	if err != nil {
		return nil, fmt.Errorf("m3fs: ctrl gate: %w", err)
	}
	// The request ringbuffer bounds the number of concurrently served
	// clients: every session activation gets one credit, and the
	// receiver must never hand out more credits than it has buffer
	// space (§4.4.3).
	s.reqs, err = env.NewRecvGate(448, 48)
	if err != nil {
		return nil, fmt.Errorf("m3fs: request gate: %w", err)
	}
	if cfg.Image != nil {
		if err := s.loadImage(cfg.Image); err != nil {
			return nil, err
		}
	}
	if cfg.Journal {
		if err := s.initJournal(); err != nil {
			return nil, err
		}
	}
	srvSel := env.AllocSel()
	var o kif.OStream
	o.Op(kif.SysCreateSrv).Sel(srvSel).Sel(s.ctrl.Sel()).Str(ServiceName)
	if _, err := env.Syscall(&o); err != nil {
		return nil, fmt.Errorf("m3fs: createsrv: %w", err)
	}
	return s, nil
}

// FS exposes the filesystem core (tests, fsck).
func (s *Service) FS() *FsCore { return s.fs }

// initJournal reads the journal area from DRAM. A valid header means a
// previous incarnation ran here: its committed records are replayed on
// top of the just-(re)built base filesystem, which also rebuilds the
// idempotency map. Anything else is first boot, and a fresh empty
// header is committed.
func (s *Service) initJournal() error {
	s.jbase = s.cfg.RegionSize - s.cfg.JournalSize
	s.jsize = s.cfg.JournalSize
	hdr := make([]byte, journalHdrSize)
	if err := s.mem.Read(hdr, s.jbase); err != nil {
		return fmt.Errorf("m3fs: journal header read: %w", err)
	}
	hs := kif.NewIStream(hdr)
	magic, _, clen := hs.U64(), hs.U64(), int(int64(hs.U64()))
	if magic != journalMagic {
		s.jcommitted = 0
		if err := s.mem.Write(encodeJournalHeader(0), s.jbase); err != nil {
			return fmt.Errorf("m3fs: journal format: %w", err)
		}
		return nil
	}
	if clen < 0 || journalHdrSize+clen > s.jsize {
		return fmt.Errorf("m3fs: journal commits %d bytes beyond its %d-byte area", clen, s.jsize)
	}
	area := make([]byte, journalHdrSize+clen)
	if err := s.mem.Read(area, s.jbase); err != nil {
		return fmt.Errorf("m3fs: journal read: %w", err)
	}
	recs, err := DecodeJournal(area)
	if err != nil {
		return err
	}
	s.compute(costJournalReplay * sim.Time(len(recs)))
	applied, err := ReplayJournal(s.fs, recs)
	if err != nil {
		return err
	}
	s.applied = applied
	s.jcommitted = clen
	s.Recovered = true
	s.ReplayedRecords = len(recs)
	return nil
}

// journalFits reports whether a record of n more bytes can still be
// committed (always true with journaling off). Checked before applying
// a mutation, so the in-memory state never runs ahead of what the
// journal can make durable.
func (s *Service) journalFits(n int) bool {
	return s.jsize == 0 || journalHdrSize+s.jcommitted+n <= s.jsize
}

// commitMut makes an applied mutation durable and replayable: append
// the record, commit the header, and remember the token's outcome. A
// crash between the two DRAM writes leaves the record uncommitted —
// exactly matching the reply the client never got.
func (s *Service) commitMut(tok token, rec []byte, entry appliedEntry) {
	if s.jsize > 0 && rec != nil {
		s.compute(costJournalAppend)
		if tr := s.env.Ctx.PE.Obs(); tr.On() {
			s.mJournalAppends.Inc()
		}
		if err := s.mem.Write(rec, s.jbase+journalHdrSize+s.jcommitted); err != nil {
			panic(fmt.Sprintf("m3fs: journal append failed: %v", err))
		}
		s.jcommitted += len(rec)
		if err := s.mem.Write(encodeJournalHeader(s.jcommitted), s.jbase); err != nil {
			panic(fmt.Sprintf("m3fs: journal commit failed: %v", err))
		}
	}
	if tok.seq != 0 {
		s.applied[tok] = entry
	}
}

// Serve handles control (kernel) and request (client) messages forever.
// The server loop is a daemon: it parking idle at the end of a run is
// the expected state, not a deadlock.
func (s *Service) Serve() {
	s.env.P().SetDaemon()
	d := s.env.DTU()
	for {
		msg, ep := d.WaitMsg(s.env.P(), s.ctrl.EP(), s.reqs.EP())
		switch ep {
		case s.ctrl.EP():
			s.handleCtrl(msg)
		case s.reqs.EP():
			s.handleRequest(msg)
		}
	}
}

// handleCtrl processes the kernel's service protocol: session opens and
// capability exchanges.
func (s *Service) handleCtrl(msg *dtu.Message) {
	is := kif.NewIStream(msg.Data)
	op := kif.ServiceOp(is.U64())
	if tr := s.env.Ctx.PE.Obs(); tr.On() {
		tr.Emit(obs.Event{At: s.env.Ctx.Now(), PE: int32(s.env.Ctx.PE.Node),
			Layer: obs.LService, Kind: obs.EvSvcReq,
			Span: obs.SpanID(msg.Span), Arg0: uint64(op)})
	}
	switch op {
	case kif.ServOpen:
		_ = is.Str() // session argument, unused by m3fs
		s.compute(costOpenSess)
		s.nextIdent++
		sess := &session{ident: s.nextIdent, files: make(map[uint64]*openFile)}
		s.sessions[sess.ident] = sess
		var o kif.OStream
		o.Err(kif.OK).U64(sess.ident)
		s.reply(s.ctrl, msg, &o)
	case kif.ServExchange:
		ident := is.U64()
		obtain := is.U64() != 0
		nCaps := is.U64()
		args := kif.NewIStream(is.Blob())
		s.compute(costExchangeBase)
		sess := s.sessions[ident]
		if sess == nil || !obtain || nCaps != 1 {
			s.replyXchgErr(msg, kif.ErrInvalidArgs)
			return
		}
		s.handleExchange(sess, args, msg)
	case kif.ServCloseSess:
		ident := is.U64()
		delete(s.sessions, ident)
		var o kif.OStream
		o.Err(kif.OK)
		s.reply(s.ctrl, msg, &o)
	default:
		s.replyXchgErr(msg, kif.ErrUnsupported)
	}
}

// handleExchange implements the capability-moving operations: locate,
// append, and get-sgate.
func (s *Service) handleExchange(sess *session, args *kif.IStream, msg *dtu.Message) {
	s.Exchanges++
	switch op := args.U64(); op {
	case xGetSGate:
		sgSel, err := s.reqs.NewSendGate(sess.ident, 1)
		if err != nil {
			s.replyXchgErr(msg, kif.ErrNoSpace)
			return
		}
		s.replyXchgCaps(msg, sgSel, nil)
	case xLocate:
		fd, off := args.U64(), int64(args.U64())
		of := sess.files[fd]
		if of == nil {
			s.replyXchgErr(msg, kif.ErrInvalidArgs)
			return
		}
		s.compute(costLocate)
		ext, extOff, extLen, ok := s.fs.FindExtent(of.ino, off)
		if !ok {
			s.replyXchgErr(msg, kif.ErrEndOfFile)
			return
		}
		s.replyExtent(msg, of, ext, extOff, extLen)
	case xAppend:
		key, seq := args.U64(), args.U64()
		fd, blocks, noMerge := args.U64(), int(args.U64()), args.U64() != 0
		tok := token{key, seq}
		of := sess.files[fd]
		if of == nil || !of.writable {
			s.replyXchgErr(msg, kif.ErrNoPerm)
			return
		}
		if blocks <= 0 {
			blocks = s.cfg.AppendBlocks
		}
		if prev, done := s.applied[tok]; seq != 0 && done {
			// Retransmit (reply lost, or lost with the incarnation that
			// sent it): hand back the original extent, never a new one,
			// or the client's file offsets diverge from the metadata.
			s.Deduped++
			s.compute(costLocate)
			s.replyExtent(msg, of, prev.ext, prev.extOff, prev.extLen)
			return
		}
		rec := encodeRecord(JRecord{Kind: JAppend, Key: key, Seq: seq, Ino: of.ino.Ino, Blocks: blocks, NoMerge: noMerge})
		if !s.journalFits(len(rec)) {
			s.replyXchgErr(msg, kif.ErrNoSpace)
			return
		}
		s.compute(costAppend)
		ext, err := s.fs.Append(of.ino, blocks, noMerge)
		if err != nil {
			s.replyXchgErr(msg, kif.ErrNoSpace)
			return
		}
		// The new extent begins at the current allocation end.
		extLen := int64(ext.Blocks) * int64(s.fs.BlockSize)
		extOff := int64(of.ino.AllocBlocks-ext.Blocks) * int64(s.fs.BlockSize)
		s.commitMut(tok, rec, appliedEntry{ext: ext, extOff: extOff, extLen: extLen, hasExt: true})
		s.replyExtent(msg, of, ext, extOff, extLen)
	default:
		s.replyXchgErr(msg, kif.ErrUnsupported)
	}
}

// replyExtent derives a memory capability for ext and answers the
// exchange with it.
func (s *Service) replyExtent(msg *dtu.Message, of *openFile, ext Extent, extOff, extLen int64) {
	perms := dtu.PermRead
	if of.writable {
		perms = dtu.PermRW
	}
	mg, err := s.mem.Derive(ext.Start*s.fs.BlockSize, int(extLen), perms)
	if err != nil {
		s.replyXchgErr(msg, kif.ErrNoSpace)
		return
	}
	var ret kif.OStream
	ret.U64(uint64(extOff)).U64(uint64(extLen))
	s.replyXchgCaps(msg, mg.Sel(), ret.Bytes())
}

// replyXchgCaps answers a ServExchange with one capability and
// optional return arguments.
func (s *Service) replyXchgCaps(msg *dtu.Message, capSel kif.CapSel, retArgs []byte) {
	var o kif.OStream
	o.Err(kif.OK).Sel(capSel).U64(1).Blob(retArgs)
	s.reply(s.ctrl, msg, &o)
}

func (s *Service) replyXchgErr(msg *dtu.Message, e kif.Error) {
	var o kif.OStream
	o.Err(e).Sel(kif.InvalidSel).U64(0).Blob(nil)
	s.reply(s.ctrl, msg, &o)
}

// handleRequest processes direct client requests (meta-data only; data
// moves through delegated memory capabilities).
func (s *Service) handleRequest(msg *dtu.Message) {
	s.Requests++
	sess := s.sessions[msg.Label]
	is := kif.NewIStream(msg.Data)
	op, key, seq := is.U64(), is.U64(), is.U64()
	if tr := s.env.Ctx.PE.Obs(); tr.On() {
		tr.Emit(obs.Event{At: s.env.Ctx.Now(), PE: int32(s.env.Ctx.PE.Node),
			Layer: obs.LService, Kind: obs.EvSvcReq,
			Span: obs.SpanID(msg.Span), Arg0: op, Arg1: msg.Label})
	}
	tok := token{key, seq}
	if sess == nil {
		s.replyErr(s.reqs, msg, kif.ErrNoSuchSession)
		return
	}
	if _, done := s.applied[tok]; seq != 0 && done {
		// Retransmit of an already applied mutation (all tokened
		// request-gate ops reply a bare OK, so the original outcome
		// needs no replaying beyond the status).
		s.Deduped++
		s.replyOK(msg)
		return
	}
	switch op {
	case fsOpen:
		s.reqOpen(sess, is, msg)
	case fsClose:
		s.reqClose(sess, tok, is, msg)
	case fsStat:
		path := is.Str()
		ino, depth, err := s.lookup(path)
		if err != nil {
			s.replyErr(s.reqs, msg, kif.ErrNoSuchFile)
			return
		}
		s.compute(costStat + costPerComponent*sim.Time(depth))
		s.replyStat(msg, ino)
	case fsFStat:
		of := sess.files[is.U64()]
		if of == nil {
			s.replyErr(s.reqs, msg, kif.ErrInvalidArgs)
			return
		}
		s.compute(costStat)
		s.replyStat(msg, of.ino)
	case fsMkdir:
		path := is.Str()
		rec := encodeRecord(JRecord{Kind: JMkdir, Key: key, Seq: seq, Path: path})
		if !s.journalFits(len(rec)) {
			s.replyErr(s.reqs, msg, kif.ErrNoSpace)
			return
		}
		depth, err := s.fs.Mkdir(path)
		s.compute(costMkdir + costPerComponent*sim.Time(depth))
		if err != nil {
			s.replyErr(s.reqs, msg, kif.ErrExists)
			return
		}
		s.commitMut(tok, rec, appliedEntry{})
		s.replyOK(msg)
	case fsUnlink:
		path := is.Str()
		rec := encodeRecord(JRecord{Kind: JUnlink, Key: key, Seq: seq, Path: path})
		if !s.journalFits(len(rec)) {
			s.replyErr(s.reqs, msg, kif.ErrNoSpace)
			return
		}
		depth, err := s.fs.Unlink(path)
		s.compute(costUnlink + costPerComponent*sim.Time(depth))
		if err != nil {
			s.replyErr(s.reqs, msg, kif.ErrNoSuchFile)
			return
		}
		s.commitMut(tok, rec, appliedEntry{})
		s.replyOK(msg)
	case fsReadDir:
		s.reqReadDir(is, msg)
	case fsLink:
		oldPath, newPath := is.Str(), is.Str()
		rec := encodeRecord(JRecord{Kind: JLink, Key: key, Seq: seq, Path: oldPath, Path2: newPath})
		if !s.journalFits(len(rec)) {
			s.replyErr(s.reqs, msg, kif.ErrNoSpace)
			return
		}
		depth, err := s.fs.Link(oldPath, newPath)
		s.compute(costLink + costPerComponent*sim.Time(depth))
		if err != nil {
			s.replyErr(s.reqs, msg, kif.ErrExists)
			return
		}
		s.commitMut(tok, rec, appliedEntry{})
		s.replyOK(msg)
	case fsRename:
		oldPath, newPath := is.Str(), is.Str()
		rec := encodeRecord(JRecord{Kind: JRename, Key: key, Seq: seq, Path: oldPath, Path2: newPath})
		if !s.journalFits(len(rec)) {
			s.replyErr(s.reqs, msg, kif.ErrNoSpace)
			return
		}
		depth, err := s.fs.Rename(oldPath, newPath)
		s.compute(costRename + costPerComponent*sim.Time(depth))
		if err != nil {
			s.replyErr(s.reqs, msg, kif.ErrExists)
			return
		}
		s.commitMut(tok, rec, appliedEntry{})
		s.replyOK(msg)
	case fsSync:
		img, err := s.DumpImage()
		s.compute(costClose)
		if err != nil {
			s.replyErr(s.reqs, msg, kif.ErrNoSpace)
			return
		}
		s.SyncedImage = img
		s.replyOK(msg)
	default:
		s.replyErr(s.reqs, msg, kif.ErrUnsupported)
	}
}

func (s *Service) lookup(path string) (*Inode, int, error) {
	ino, depth, err := s.fs.Lookup(path)
	return ino, depth, err
}

// reqOpen opens (and possibly creates or truncates) a file. Open is
// naturally idempotent — a retried create finds the file, a retried
// truncate re-truncates to the same zero — so it carries no token, but
// its side effects are still journaled.
func (s *Service) reqOpen(sess *session, is *kif.IStream, msg *dtu.Message) {
	path, flags := is.Str(), is.U64()
	ino, depth, err := s.fs.Lookup(path)
	s.compute(costOpen + costPerComponent*sim.Time(depth))
	if err != nil {
		if flags&flagCreate == 0 {
			s.replyErr(s.reqs, msg, kif.ErrNoSuchFile)
			return
		}
		rec := encodeRecord(JRecord{Kind: JCreate, Path: path})
		if !s.journalFits(len(rec)) {
			s.replyErr(s.reqs, msg, kif.ErrNoSpace)
			return
		}
		ino, _, err = s.fs.Create(path)
		if err != nil {
			s.replyErr(s.reqs, msg, kif.ErrNoSuchFile)
			return
		}
		s.commitMut(token{}, rec, appliedEntry{})
	} else if flags&flagTrunc != 0 && !ino.Dir {
		rec := encodeRecord(JRecord{Kind: JTrunc, Ino: ino.Ino})
		if !s.journalFits(len(rec)) {
			s.replyErr(s.reqs, msg, kif.ErrNoSpace)
			return
		}
		s.fs.Truncate(ino, 0)
		s.commitMut(token{}, rec, appliedEntry{})
	}
	sess.nextFD++
	fd := sess.nextFD
	sess.files[fd] = &openFile{ino: ino, writable: flags&flagWrite != 0}
	var o kif.OStream
	// The reply carries size AND allocated bytes, so the client knows
	// which positions are covered by existing extents (append into a
	// partially used last block locates instead of allocating).
	o.Err(kif.OK).U64(fd).U64(uint64(ino.Size)).U64(uint64(len(ino.Extents)))
	o.U64(uint64(ino.AllocBlocks * s.fs.BlockSize))
	s.reply(s.reqs, msg, &o)
}

func (s *Service) reqClose(sess *session, tok token, is *kif.IStream, msg *dtu.Message) {
	fd, size := is.U64(), int64(is.U64())
	of := sess.files[fd]
	if of == nil {
		s.replyErr(s.reqs, msg, kif.ErrInvalidArgs)
		return
	}
	s.compute(costClose)
	if of.writable {
		rec := encodeRecord(JRecord{Kind: JTrunc, Ino: of.ino.Ino, Size: size})
		if !s.journalFits(len(rec)) {
			s.replyErr(s.reqs, msg, kif.ErrNoSpace)
			return
		}
		s.fs.Truncate(of.ino, size)
		s.commitMut(tok, rec, appliedEntry{})
	} else {
		s.commitMut(tok, nil, appliedEntry{})
	}
	delete(sess.files, fd)
	s.replyOK(msg)
}

// reqReadDir returns directory entries in chunks of up to 8, starting
// at index.
func (s *Service) reqReadDir(is *kif.IStream, msg *dtu.Message) {
	path, idx := is.Str(), int(is.U64())
	names, dir, err := s.fs.ReadDir(path)
	if err != nil {
		s.replyErr(s.reqs, msg, kif.ErrNoSuchFile)
		return
	}
	sortStrings(names)
	s.compute(costReadDir)
	const chunk = 8
	var o kif.OStream
	o.Err(kif.OK)
	end := idx + chunk
	if end > len(names) {
		end = len(names)
	}
	if idx > end {
		idx = end
	}
	o.U64(uint64(len(names))).U64(uint64(end - idx))
	for _, n := range names[idx:end] {
		child := s.fs.Child(dir, n)
		o.Str(n)
		if child != nil && child.Dir {
			o.U64(1)
		} else {
			o.U64(0)
		}
	}
	s.reply(s.reqs, msg, &o)
}

func (s *Service) replyStat(msg *dtu.Message, ino *Inode) {
	var o kif.OStream
	o.Err(kif.OK).U64(uint64(ino.Size))
	if ino.Dir {
		o.U64(1)
	} else {
		o.U64(0)
	}
	o.U64(ino.Ino).U64(uint64(len(ino.Extents))).U64(uint64(ino.Nlink))
	s.reply(s.reqs, msg, &o)
}

func (s *Service) replyOK(msg *dtu.Message) {
	var o kif.OStream
	o.Err(kif.OK)
	s.reply(s.reqs, msg, &o)
}

func (s *Service) replyErr(rg *m3.RecvGate, msg *dtu.Message, e kif.Error) {
	var o kif.OStream
	o.Err(e)
	s.reply(rg, msg, &o)
}

func (s *Service) reply(rg *m3.RecvGate, msg *dtu.Message, o *kif.OStream) {
	if err := rg.Reply(msg, o.Bytes()); err != nil {
		if errors.Is(err, dtu.ErrTimeout) {
			// The client became unreachable (fault injection); the
			// service must outlive its clients.
			s.RepliesLost++
			return
		}
		panic(fmt.Sprintf("m3fs: reply failed: %v", err))
	}
}

func (s *Service) compute(n sim.Time) { s.env.Ctx.Compute(n) }

// sortStrings is a tiny insertion sort to avoid importing sort for hot
// paths with small n.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// SessionCount returns the number of live sessions (tests).
func (s *Service) SessionCount() int { return len(s.sessions) }
