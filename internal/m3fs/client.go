package m3fs

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/dtu"
	"repro/internal/kif"
	"repro/internal/m3"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/sim"
)

// Bounded-recovery knobs. Recovery is armed only when fault injection
// arms a call deadline on the DTU; without one every wait is unbounded
// and none of these paths schedule events.
const (
	// maxMountAttempts bounds the boot race retry in Mount.
	maxMountAttempts = 100
	// maxCallAttempts bounds how often one logical operation is retried
	// across session re-establishments before giving up.
	maxCallAttempts = 4
	// maxRecoverAttempts bounds how long a client waits for a service
	// restart; with restarts disabled this degrades into a clean error
	// after maxRecoverAttempts*costRecoverRetry cycles of back-off.
	maxRecoverAttempts = 64
)

// Client is the libm3-side m3fs driver: it implements m3.FileSystem on
// top of a session with the service. Meta-data operations are messages
// to the service; data access goes through memory capabilities covering
// file extents, obtained once per extent and cached, so that the
// common-case read/write path involves only libm3 (§5.4).
//
// When fault injection arms a call deadline, the client additionally
// survives service crashes: every operation carries an idempotency
// token, every wait is bounded, and on a session-dead error the client
// re-opens the session against the restarted incarnation and replays
// the in-flight request with its original token (docs/RECOVERY.md).
type Client struct {
	env     *m3.Env
	service string
	//m3vet:resolve sharedstate owner client state is driven only by the owning VPE's process
	sess kif.CapSel
	//m3vet:resolve sharedstate owner client state is driven only by the owning VPE's process
	sg *m3.SendGate

	// key/seq form the idempotency tokens: key is the client's PE
	// number, seq a monotonic counter for mutating operations.
	key uint64
	//m3vet:resolve sharedstate owner client state is driven only by the owning VPE's process
	seq uint64
	// gen counts established sessions; files opened under an older gen
	// re-open themselves before their next operation.
	//m3vet:resolve sharedstate owner client state is driven only by the owning VPE's process
	gen uint64
	//m3vet:resolve sharedstate owner client state is driven only by the owning VPE's process
	files []*file
	//m3vet:resolve sharedstate owner client state is driven only by the owning VPE's process
	recovering bool

	//m3vet:resolve sharedstate owner client state is driven only by the owning VPE's process
	mSessionReopens *obs.Counter

	// breaker is the client-side circuit breaker, created lazily on the
	// first call of an overload-armed run (env.DTU().Overloaded()); nil
	// on every other run, so plain runs allocate and check nothing.
	//m3vet:resolve sharedstate owner client state is driven only by the owning VPE's process
	breaker *overload.Breaker

	// ShedRetries counts bounded retries after overload refusals;
	// BreakerRejects counts calls failed fast by the open client
	// breaker (tests and the bench harness).
	//m3vet:resolve sharedstate owner client state is driven only by the owning VPE's process
	ShedRetries uint64
	//m3vet:resolve sharedstate owner client state is driven only by the owning VPE's process
	BreakerRejects uint64

	// ShedRetryAttempts tunes the bounded retry budget applied to
	// overload refusals: 0 picks the overload package default, a
	// negative value disables retries entirely so refusals surface
	// immediately (the eload harness uses this to measure the raw
	// fast-fail latency).
	//m3vet:resolve sharedstate owner set once by the driving harness before traffic starts, read by the owning VPE's process
	ShedRetryAttempts int

	// AppendBlocks overrides the per-append preallocation (0 = server
	// default); NoMerge forces separate extents (Figure 4 experiment).
	//m3vet:resolve sharedstate owner client state is driven only by the owning VPE's process
	AppendBlocks int
	//m3vet:resolve sharedstate owner client state is driven only by the owning VPE's process
	NoMerge bool

	// Recoveries counts successful session re-establishments (tests).
	//m3vet:resolve sharedstate owner client state is driven only by the owning VPE's process
	Recoveries uint64
}

var _ m3.FileSystem = (*Client)(nil)

// Mount opens a session at the named m3fs service, retrying while the
// service has not registered yet (boot races) or is between
// incarnations, and obtains the send gate for requests.
func Mount(env *m3.Env, service string) (*Client, error) {
	if service == "" {
		service = ServiceName
	}
	c := &Client{env: env, service: service, key: uint64(env.Ctx.PE.ID)}
	if tr := env.Ctx.PE.Obs(); tr.On() {
		c.mSessionReopens = tr.Metrics().Counter(MSessionReopens, -1)
	}
	var lastErr error
	for attempt := 0; attempt < maxMountAttempts; attempt++ {
		sess, err := env.OpenSess(service, "")
		if err != nil {
			lastErr = fmt.Errorf("m3fs: open session: %w", err)
			// Not registered yet (boot race) or shed by the overloaded
			// kernel/service: back off and retry, bounded by the attempt
			// budget.
			if errors.Is(err, kif.ErrNoSuchService) || errors.Is(err, kif.ErrOverload) {
				env.P().Sleep(costMountRetry)
				continue
			}
			return nil, lastErr
		}
		sgSel := env.AllocSel()
		var args kif.OStream
		args.U64(xGetSGate)
		if _, err := env.ExchangeSess(sess, true, sgSel, 1, args.Bytes()); err != nil {
			lastErr = fmt.Errorf("m3fs: obtain sgate: %w", err)
			if c.recoverable(err) || errors.Is(err, kif.ErrOverload) {
				env.P().Sleep(costMountRetry)
				continue
			}
			return nil, lastErr
		}
		c.sess = sess
		c.sg = env.SendGateAt(sgSel)
		return c, nil
	}
	return nil, lastErr
}

// ClientFromCaps wraps an already-delegated session and request gate
// (e.g. inherited from a parent VPE, like a forked child inheriting a
// mount).
func ClientFromCaps(env *m3.Env, sess, sgate kif.CapSel) *Client {
	return &Client{
		env:     env,
		service: ServiceName,
		key:     uint64(env.Ctx.PE.ID),
		sess:    sess,
		sg:      env.SendGateAt(sgate),
	}
}

// SessSel returns the session capability selector (for delegation to
// children).
func (c *Client) SessSel() kif.CapSel { return c.sess }

// SGateSel returns the request-gate capability selector.
func (c *Client) SGateSel() kif.CapSel { return c.sg.Sel() }

// MountAt mounts a fresh client at prefix in the environment's VFS.
func MountAt(env *m3.Env, prefix, service string) (*Client, error) {
	c, err := Mount(env, service)
	if err != nil {
		return nil, err
	}
	if err := env.VFS.Mount(prefix, c); err != nil {
		return nil, err
	}
	return c, nil
}

// deadline is the armed call budget (0 = fault-free, unbounded).
func (c *Client) deadline() sim.Time { return c.env.DTU().CallDeadline() }

// nextSeq mints a fresh idempotency token sequence number.
func (c *Client) nextSeq() uint64 {
	c.seq++
	return c.seq
}

// recoverable reports whether err indicates a dead or superseded
// service incarnation worth a session re-establishment. Without the
// fault layer armed nothing is: the errors below then signify real
// protocol violations that should surface — and under pure overload
// (EnableOverload without faults) a timeout means shed or expired
// work on a perfectly healthy service, where re-opening the session
// would only add open-session load to the storm. kif.ErrOverload is
// deliberately never recoverable: it is handled by the bounded retry
// budget in call, not by session recovery.
func (c *Client) recoverable(err error) bool {
	if err == nil || !c.env.DTU().Faulty() || c.deadline() == 0 {
		return false
	}
	return errors.Is(err, kif.ErrTimeout) ||
		errors.Is(err, kif.ErrNoSuchService) ||
		errors.Is(err, kif.ErrNoSuchSession) ||
		errors.Is(err, kif.ErrNoSuchCap) ||
		errors.Is(err, kif.ErrVPEGone) ||
		errors.Is(err, dtu.ErrTimeout) ||
		errors.Is(err, dtu.ErrBadEndpoint)
}

// recover re-establishes the session after the service incarnation
// died: drop the stale send gate and extent capabilities, then retry
// open-session against the (possibly not yet restarted) service with
// bounded back-off. On success the session generation is bumped so open
// files re-open lazily.
func (c *Client) recover() error {
	if c.recovering {
		return errors.New("m3fs: recursive session recovery")
	}
	c.recovering = true
	defer func() { c.recovering = false }()
	c.sg.Drop()
	for _, f := range c.files {
		f.dropExtents()
	}
	lastErr := errors.New("m3fs: no recovery attempt made")
	for attempt := 0; attempt < maxRecoverAttempts; attempt++ {
		c.env.P().Sleep(costRecoverRetry)
		sess, err := c.env.OpenSess(c.service, "")
		if err != nil {
			lastErr = err
			continue
		}
		sgSel := c.env.AllocSel()
		var args kif.OStream
		args.U64(xGetSGate)
		if _, err := c.env.ExchangeSess(sess, true, sgSel, 1, args.Bytes()); err != nil {
			lastErr = err
			continue
		}
		c.sess = sess
		c.sg = c.env.SendGateAt(sgSel)
		c.gen++
		c.Recoveries++
		if tr := c.env.Ctx.PE.Obs(); tr.On() {
			c.mSessionReopens.Inc()
		}
		return nil
	}
	return fmt.Errorf("m3fs: session recovery failed: %w", lastErr)
}

// callOnce performs one request-gate call (bounded by the armed
// deadline) and returns the reply stream positioned after a successful
// error code.
func (c *Client) callOnce(o *kif.OStream) (*kif.IStream, error) {
	data, err := c.sg.CallDeadline(o.Bytes(), c.deadline())
	if err != nil {
		return nil, err
	}
	is := kif.NewIStream(data)
	if e := is.ErrCode(); e != kif.OK {
		return nil, e
	}
	return is, nil
}

// clientBreaker returns the client-side circuit breaker, lazily
// created on overload-armed runs and nil everywhere else.
func (c *Client) clientBreaker() *overload.Breaker {
	if !c.env.DTU().Overloaded() {
		return nil
	}
	if c.breaker == nil {
		c.breaker = overload.NewBreaker(overload.BreakerConfig{})
	}
	return c.breaker
}

// shedBudget mints the per-operation retry budget for overload
// refusals, honoring the ShedRetryAttempts override; nil when retries
// are disabled.
func (c *Client) shedBudget() *overload.RetryBudget {
	if c.ShedRetryAttempts < 0 {
		return nil
	}
	b := overload.NewRetryBudget(c.ShedRetryAttempts, 0, 0)
	return &b
}

// overloadRetryable reports whether err is worth a bounded retry under
// the overload discipline: an explicit admission refusal always, a
// timeout only when overload is armed without the fault layer (then it
// means shed or expired work, not a dead service).
func (c *Client) overloadRetryable(err error) bool {
	if errors.Is(err, kif.ErrOverload) {
		return true
	}
	return c.env.DTU().Overloaded() && !c.env.DTU().Faulty() &&
		(errors.Is(err, kif.ErrTimeout) || errors.Is(err, dtu.ErrTimeout))
}

// call runs build and sends the result, transparently re-establishing
// the session and retrying on recoverable errors. The builder runs
// once per attempt so fd-bearing requests pick up post-recovery
// descriptors; idempotency tokens must be minted once by the caller
// and captured, so every retry replays the same logical operation.
//
// Under overload control the call additionally passes the client's
// circuit breaker, and refusals (kif.ErrOverload) or shed-induced
// timeouts are retried under a deterministic bounded retry budget —
// never via session recovery: the session is fine, the service is
// busy, and the right client behavior is to back off and come back a
// bounded number of times (docs/OVERLOAD.md).
func (c *Client) call(build func() (*kif.OStream, error)) (*kif.IStream, error) {
	var lastErr error
	var budget *overload.RetryBudget
	for attempt := 0; attempt < maxCallAttempts; attempt++ {
		if br := c.clientBreaker(); br != nil && !br.Allow(c.env.P().Now()) {
			c.BreakerRejects++
			return nil, fmt.Errorf("m3fs: circuit breaker open: %w", kif.ErrOverload)
		}
		o, err := build()
		if err == nil {
			var is *kif.IStream
			is, err = c.callOnce(o)
			if err == nil {
				if br := c.clientBreaker(); br != nil {
					br.Success(c.env.P().Now())
				}
				return is, nil
			}
		}
		lastErr = err
		if c.overloadRetryable(err) {
			if br := c.clientBreaker(); br != nil && !errors.Is(err, kif.ErrOverload) {
				// Deadline misses feed the breaker; admission refusals do
				// not — the service answered promptly, it is in control.
				br.Failure(c.env.P().Now())
			}
			if budget == nil {
				if budget = c.shedBudget(); budget == nil {
					return nil, lastErr
				}
			}
			delay, ok := budget.Next()
			if !ok {
				return nil, lastErr
			}
			c.ShedRetries++
			c.env.P().Sleep(delay)
			continue
		}
		if !c.recoverable(err) {
			return nil, err
		}
		if rerr := c.recover(); rerr != nil {
			return nil, rerr
		}
	}
	return nil, lastErr
}

func (c *Client) removeFile(f *file) {
	for i, g := range c.files {
		if g == f {
			c.files = append(c.files[:i], c.files[i+1:]...)
			return
		}
	}
}

// Open opens or creates the file at path.
func (c *Client) Open(path string, flags m3.OpenFlags) (m3.File, error) {
	var fd uint64
	var size, alloc int64
	is, err := c.call(func() (*kif.OStream, error) {
		var o kif.OStream
		o.U64(fsOpen).U64(c.key).U64(0).Str(path).U64(wireFlags(flags))
		return &o, nil
	})
	if err != nil {
		return nil, fmt.Errorf("m3fs: open %s: %w", path, err)
	}
	fd, size = is.U64(), int64(is.U64())
	_ = is.U64() // extent count (informational)
	alloc = int64(is.U64())
	f := &file{c: c, fd: fd, path: path, gen: c.gen, size: size, alloc: alloc, flags: flags}
	if flags&m3.OpenTrunc != 0 {
		f.alloc = 0
	}
	if flags&m3.OpenAppend != 0 {
		f.pos = size
	}
	c.files = append(c.files, f)
	return f, nil
}

// Stat returns metadata for path.
func (c *Client) Stat(path string) (m3.Stat, error) {
	is, err := c.call(func() (*kif.OStream, error) {
		var o kif.OStream
		o.U64(fsStat).U64(c.key).U64(0).Str(path)
		return &o, nil
	})
	if err != nil {
		return m3.Stat{}, fmt.Errorf("m3fs: stat %s: %w", path, err)
	}
	return decodeStat(is), nil
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string) error {
	key, seq := c.key, c.nextSeq()
	_, err := c.call(func() (*kif.OStream, error) {
		var o kif.OStream
		o.U64(fsMkdir).U64(key).U64(seq).Str(path)
		return &o, nil
	})
	if err != nil {
		return fmt.Errorf("m3fs: mkdir %s: %w", path, err)
	}
	return nil
}

// Unlink removes a file or empty directory.
func (c *Client) Unlink(path string) error {
	key, seq := c.key, c.nextSeq()
	_, err := c.call(func() (*kif.OStream, error) {
		var o kif.OStream
		o.U64(fsUnlink).U64(key).U64(seq).Str(path)
		return &o, nil
	})
	if err != nil {
		return fmt.Errorf("m3fs: unlink %s: %w", path, err)
	}
	return nil
}

// Link creates a hard link: a second name for the file at oldPath.
func (c *Client) Link(oldPath, newPath string) error {
	key, seq := c.key, c.nextSeq()
	_, err := c.call(func() (*kif.OStream, error) {
		var o kif.OStream
		o.U64(fsLink).U64(key).U64(seq).Str(oldPath).Str(newPath)
		return &o, nil
	})
	if err != nil {
		return fmt.Errorf("m3fs: link %s -> %s: %w", newPath, oldPath, err)
	}
	return nil
}

// Rename moves the entry at oldPath to newPath.
func (c *Client) Rename(oldPath, newPath string) error {
	key, seq := c.key, c.nextSeq()
	_, err := c.call(func() (*kif.OStream, error) {
		var o kif.OStream
		o.U64(fsRename).U64(key).U64(seq).Str(oldPath).Str(newPath)
		return &o, nil
	})
	if err != nil {
		return fmt.Errorf("m3fs: rename %s -> %s: %w", oldPath, newPath, err)
	}
	return nil
}

// Sync asks the service to flush the filesystem to its persistent
// image.
func (c *Client) Sync() error {
	_, err := c.call(func() (*kif.OStream, error) {
		var o kif.OStream
		o.U64(fsSync).U64(c.key).U64(0)
		return &o, nil
	})
	if err != nil {
		return fmt.Errorf("m3fs: sync: %w", err)
	}
	return nil
}

// ReadDir lists a directory.
func (c *Client) ReadDir(path string) ([]m3.DirEntry, error) {
	var out []m3.DirEntry
	for idx := 0; ; {
		is, err := c.call(func() (*kif.OStream, error) {
			var o kif.OStream
			o.U64(fsReadDir).U64(c.key).U64(0).Str(path).U64(uint64(idx))
			return &o, nil
		})
		if err != nil {
			return nil, fmt.Errorf("m3fs: readdir %s: %w", path, err)
		}
		total, n := int(is.U64()), int(is.U64())
		for i := 0; i < n; i++ {
			name := is.Str()
			isDir := is.U64() != 0
			out = append(out, m3.DirEntry{Name: name, IsDir: isDir})
		}
		idx += n
		if idx >= total || n == 0 {
			return out, nil
		}
	}
}

func decodeStat(is *kif.IStream) m3.Stat {
	size := int64(is.U64())
	isDir := is.U64() != 0
	ino := is.U64()
	extents := int(is.U64())
	links := int(is.U64())
	return m3.Stat{Size: size, IsDir: isDir, Ino: ino, Extents: extents, Links: links}
}

func wireFlags(f m3.OpenFlags) uint64 {
	var w uint64
	if f&m3.OpenRead != 0 {
		w |= flagRead
	}
	if f&m3.OpenWrite != 0 {
		w |= flagWrite
	}
	if f&m3.OpenCreate != 0 {
		w |= flagCreate
	}
	if f&m3.OpenTrunc != 0 {
		w |= flagTrunc
	}
	if f&m3.OpenAppend != 0 {
		w |= flagAppend
	}
	return w
}

// cext is a cached extent: a memory gate covering file bytes
// [off, off+len).
type cext struct {
	off, len int64
	mg       *m3.MemGate
}

// file implements m3.File. The extent cache makes repeated reads,
// writes, and most seeks purely local (§4.5.8): only when the position
// leaves the obtained extents is m3fs contacted again.
type file struct {
	c     *Client
	fd    uint64
	path  string
	gen   uint64 // session generation the fd belongs to
	flags m3.OpenFlags
	pos   int64
	size  int64
	// alloc is the allocated (possibly preallocated) end of the file as
	// known locally; writes below it stay local.
	alloc   int64
	extents []cext
	closed  bool
}

// dropExtents retires every cached extent gate (session recovery: the
// capabilities died with the service incarnation).
func (f *file) dropExtents() {
	for i := range f.extents {
		f.extents[i].mg.Drop()
	}
	f.extents = nil
}

// ensureOpen re-opens the file against a new service incarnation when
// the session generation moved on. Create and truncate flags are
// stripped: the original open already journaled their effect, and a
// non-journaled restart losing the file should surface as a clean
// "no such file", not silently hand back an empty one. Position and
// size stay client-local — the client's view is authoritative for its
// own in-flight writes.
func (f *file) ensureOpen() error {
	c := f.c
	if f.gen == c.gen || f.closed {
		return nil
	}
	var o kif.OStream
	o.U64(fsOpen).U64(c.key).U64(0).Str(f.path).U64(wireFlags(f.flags &^ (m3.OpenCreate | m3.OpenTrunc)))
	is, err := c.callOnce(&o)
	if err != nil {
		return err
	}
	f.fd = is.U64()
	_ = is.U64() // size: client-local view is authoritative
	_ = is.U64() // extent count
	f.alloc = int64(is.U64())
	f.gen = c.gen
	return nil
}

// findExtent returns the cached extent containing off.
func (f *file) findExtent(off int64) *cext {
	for i := range f.extents {
		e := &f.extents[i]
		if off >= e.off && off < e.off+e.len {
			return e
		}
	}
	return nil
}

// obtain runs a session exchange built by build (re-run per attempt so
// it sees post-recovery descriptors), parses the returned extent, and
// caches it. kif.ErrEndOfFile passes through untouched: it is the
// locate-miss signal, not a failure.
func (f *file) obtain(build func() []byte) (*cext, error) {
	c := f.c
	var lastErr error
	var budget *overload.RetryBudget
	for attempt := 0; attempt < maxCallAttempts; attempt++ {
		err := f.ensureOpen()
		if err == nil {
			sel := c.env.AllocSel()
			var ret []byte
			ret, err = c.env.ExchangeSess(c.sess, true, sel, 1, build())
			if err == nil {
				ris := kif.NewIStream(ret)
				extOff, extLen := int64(ris.U64()), int64(ris.U64())
				e := cext{off: extOff, len: extLen, mg: c.env.MemGateAt(sel, int(extLen))}
				f.extents = append(f.extents, e)
				if extOff+extLen > f.alloc {
					f.alloc = extOff + extLen
				}
				return &f.extents[len(f.extents)-1], nil
			}
			if errors.Is(err, kif.ErrEndOfFile) {
				return nil, err
			}
		}
		lastErr = err
		if c.overloadRetryable(err) {
			// Shed or refused exchange: bounded retry, same discipline as
			// call — the session is intact, the service is busy.
			if budget == nil {
				if budget = c.shedBudget(); budget == nil {
					return nil, lastErr
				}
			}
			delay, ok := budget.Next()
			if !ok {
				return nil, lastErr
			}
			c.ShedRetries++
			c.env.P().Sleep(delay)
			continue
		}
		if !c.recoverable(err) {
			return nil, err
		}
		if rerr := c.recover(); rerr != nil {
			return nil, rerr
		}
	}
	return nil, lastErr
}

// locate obtains the extent covering off from m3fs.
func (f *file) locate(off int64) (*cext, error) {
	return f.obtain(func() []byte {
		var args kif.OStream
		args.U64(xLocate).U64(f.fd).U64(uint64(off))
		return args.Bytes()
	})
}

// appendExtent asks m3fs to reserve new blocks at the end of the file.
// The token is minted once: if the reply is lost to a crash, the retry
// presents the same token and the (restarted) service answers with the
// original extent.
func (f *file) appendExtent() (*cext, error) {
	c := f.c
	key, seq := c.key, c.nextSeq()
	return f.obtain(func() []byte {
		var args kif.OStream
		args.U64(xAppend).U64(key).U64(seq).U64(f.fd).U64(uint64(c.AppendBlocks))
		if c.NoMerge {
			args.U64(1)
		} else {
			args.U64(0)
		}
		return args.Bytes()
	})
}

// Read fills buf from the current position, returning io.EOF at end of
// file.
func (f *file) Read(buf []byte) (int, error) {
	env := f.c.env
	env.Ctx.Compute(m3.CostFileEnter)
	if f.closed {
		return 0, errors.New("m3fs: read on closed file")
	}
	for attempt := 0; ; attempt++ {
		if f.pos >= f.size {
			return 0, io.EOF
		}
		env.Ctx.Compute(m3.CostFileLocate)
		e := f.findExtent(f.pos)
		if e == nil {
			var err error
			if e, err = f.locate(f.pos); err != nil {
				return 0, err
			}
		}
		n := int64(len(buf))
		if rest := e.off + e.len - f.pos; n > rest {
			n = rest
		}
		if rest := f.size - f.pos; n > rest {
			n = rest
		}
		err := e.mg.Read(buf[:n], int(f.pos-e.off))
		if err == nil {
			f.pos += n
			return int(n), nil
		}
		if attempt >= maxCallAttempts || !f.c.recoverable(err) {
			return 0, err
		}
		// The extent capability died with the service incarnation;
		// recovery drops the cache and the next attempt re-locates.
		if rerr := f.c.recover(); rerr != nil {
			return 0, rerr
		}
	}
}

// Write stores buf at the current position, appending via preallocated
// extents as needed.
func (f *file) Write(buf []byte) (int, error) {
	env := f.c.env
	env.Ctx.Compute(m3.CostFileEnter)
	if f.closed {
		return 0, errors.New("m3fs: write on closed file")
	}
	if f.flags&m3.OpenWrite == 0 {
		return 0, errors.New("m3fs: file not open for writing")
	}
	total := 0
	attempts := 0
	for len(buf) > 0 {
		env.Ctx.Compute(m3.CostFileLocate)
		e := f.findExtent(f.pos)
		if e == nil {
			var err error
			if f.pos < f.size || f.pos < f.alloc {
				// Overwriting existing data (or preallocated space):
				// obtain the extent that already covers the position.
				e, err = f.locate(f.pos)
				if err != nil && errors.Is(err, kif.ErrEndOfFile) {
					e, err = f.appendExtent()
				}
			} else {
				e, err = f.appendExtent()
			}
			if err != nil {
				return total, err
			}
		}
		n := int64(len(buf))
		if rest := e.off + e.len - f.pos; n > rest {
			n = rest
		}
		if err := e.mg.Write(buf[:n], int(f.pos-e.off)); err != nil {
			if attempts >= maxCallAttempts || !f.c.recoverable(err) {
				return total, err
			}
			attempts++
			if rerr := f.c.recover(); rerr != nil {
				return total, rerr
			}
			continue // re-locate the extent against the new incarnation
		}
		f.pos += n
		if f.pos > f.size {
			f.size = f.pos
		}
		buf = buf[n:]
		total += int(n)
	}
	return total, nil
}

// Seek adjusts the position; it is purely local ("most seek operations
// can be done in libm3").
func (f *file) Seek(off int64, whence int) (int64, error) {
	f.c.env.Ctx.Compute(m3.CostFileLocate)
	switch whence {
	case io.SeekStart:
		f.pos = off
	case io.SeekCurrent:
		f.pos += off
	case io.SeekEnd:
		f.pos = f.size + off
	default:
		return 0, errors.New("m3fs: bad whence")
	}
	if f.pos < 0 {
		f.pos = 0
	}
	return f.pos, nil
}

// Close reports the final size so m3fs can truncate preallocation. The
// token makes a retried close a no-op on the service side.
func (f *file) Close() error {
	if f.closed {
		return nil
	}
	key, seq := f.c.key, f.c.nextSeq()
	_, err := f.c.call(func() (*kif.OStream, error) {
		if err := f.ensureOpen(); err != nil {
			return nil, err
		}
		var o kif.OStream
		o.U64(fsClose).U64(key).U64(seq).U64(f.fd).U64(uint64(f.size))
		return &o, nil
	})
	f.closed = true
	f.c.removeFile(f)
	f.dropExtents()
	return err
}

// Stat queries the service about the open file.
func (f *file) Stat() (m3.Stat, error) {
	is, err := f.c.call(func() (*kif.OStream, error) {
		if err := f.ensureOpen(); err != nil {
			return nil, err
		}
		var o kif.OStream
		o.U64(fsFStat).U64(f.c.key).U64(0).U64(f.fd)
		return &o, nil
	})
	if err != nil {
		return m3.Stat{}, err
	}
	return decodeStat(is), nil
}
