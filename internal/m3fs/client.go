package m3fs

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/kif"
	"repro/internal/m3"
)

// Client is the libm3-side m3fs driver: it implements m3.FileSystem on
// top of a session with the service. Meta-data operations are messages
// to the service; data access goes through memory capabilities covering
// file extents, obtained once per extent and cached, so that the
// common-case read/write path involves only libm3 (§5.4).
type Client struct {
	env  *m3.Env
	sess kif.CapSel
	sg   *m3.SendGate

	// AppendBlocks overrides the per-append preallocation (0 = server
	// default); NoMerge forces separate extents (Figure 4 experiment).
	AppendBlocks int
	NoMerge      bool
}

var _ m3.FileSystem = (*Client)(nil)

// Mount opens a session at the named m3fs service, retrying while the
// service has not registered yet (boot races), and obtains the send
// gate for requests.
func Mount(env *m3.Env, service string) (*Client, error) {
	if service == "" {
		service = ServiceName
	}
	var sess kif.CapSel
	for attempt := 0; ; attempt++ {
		var err error
		sess, err = env.OpenSess(service, "")
		if err == nil {
			break
		}
		if errors.Is(err, kif.ErrNoSuchService) && attempt < 100 {
			env.P().Sleep(costMountRetry)
			continue
		}
		return nil, fmt.Errorf("m3fs: open session: %w", err)
	}
	c := &Client{env: env, sess: sess}
	sgSel := env.AllocSel()
	var args kif.OStream
	args.U64(xGetSGate)
	if _, err := env.ExchangeSess(sess, true, sgSel, 1, args.Bytes()); err != nil {
		return nil, fmt.Errorf("m3fs: obtain sgate: %w", err)
	}
	c.sg = env.SendGateAt(sgSel)
	return c, nil
}

// ClientFromCaps wraps an already-delegated session and request gate
// (e.g. inherited from a parent VPE, like a forked child inheriting a
// mount).
func ClientFromCaps(env *m3.Env, sess, sgate kif.CapSel) *Client {
	return &Client{env: env, sess: sess, sg: env.SendGateAt(sgate)}
}

// SessSel returns the session capability selector (for delegation to
// children).
func (c *Client) SessSel() kif.CapSel { return c.sess }

// SGateSel returns the request-gate capability selector.
func (c *Client) SGateSel() kif.CapSel { return c.sg.Sel() }

// MountAt mounts a fresh client at prefix in the environment's VFS.
func MountAt(env *m3.Env, prefix, service string) (*Client, error) {
	c, err := Mount(env, service)
	if err != nil {
		return nil, err
	}
	if err := env.VFS.Mount(prefix, c); err != nil {
		return nil, err
	}
	return c, nil
}

// call performs a request-gate call and returns the reply stream
// positioned after a successful error code.
func (c *Client) call(o *kif.OStream) (*kif.IStream, error) {
	data, err := c.sg.Call(o.Bytes())
	if err != nil {
		return nil, err
	}
	is := kif.NewIStream(data)
	if e := is.ErrCode(); e != kif.OK {
		return nil, e
	}
	return is, nil
}

// Open opens or creates the file at path.
func (c *Client) Open(path string, flags m3.OpenFlags) (m3.File, error) {
	var o kif.OStream
	o.U64(fsOpen).Str(path).U64(wireFlags(flags))
	is, err := c.call(&o)
	if err != nil {
		return nil, fmt.Errorf("m3fs: open %s: %w", path, err)
	}
	fd, size := is.U64(), int64(is.U64())
	_ = is.U64() // extent count (informational)
	alloc := int64(is.U64())
	f := &file{c: c, fd: fd, size: size, alloc: alloc, flags: flags}
	if flags&m3.OpenTrunc != 0 {
		f.alloc = 0
	}
	if flags&m3.OpenAppend != 0 {
		f.pos = size
	}
	return f, nil
}

// Stat returns metadata for path.
func (c *Client) Stat(path string) (m3.Stat, error) {
	var o kif.OStream
	o.U64(fsStat).Str(path)
	is, err := c.call(&o)
	if err != nil {
		return m3.Stat{}, fmt.Errorf("m3fs: stat %s: %w", path, err)
	}
	return decodeStat(is), nil
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string) error {
	var o kif.OStream
	o.U64(fsMkdir).Str(path)
	_, err := c.call(&o)
	if err != nil {
		return fmt.Errorf("m3fs: mkdir %s: %w", path, err)
	}
	return nil
}

// Unlink removes a file or empty directory.
func (c *Client) Unlink(path string) error {
	var o kif.OStream
	o.U64(fsUnlink).Str(path)
	_, err := c.call(&o)
	if err != nil {
		return fmt.Errorf("m3fs: unlink %s: %w", path, err)
	}
	return nil
}

// Link creates a hard link: a second name for the file at oldPath.
func (c *Client) Link(oldPath, newPath string) error {
	var o kif.OStream
	o.U64(fsLink).Str(oldPath).Str(newPath)
	if _, err := c.call(&o); err != nil {
		return fmt.Errorf("m3fs: link %s -> %s: %w", newPath, oldPath, err)
	}
	return nil
}

// Rename moves the entry at oldPath to newPath.
func (c *Client) Rename(oldPath, newPath string) error {
	var o kif.OStream
	o.U64(fsRename).Str(oldPath).Str(newPath)
	if _, err := c.call(&o); err != nil {
		return fmt.Errorf("m3fs: rename %s -> %s: %w", oldPath, newPath, err)
	}
	return nil
}

// Sync asks the service to flush the filesystem to its persistent
// image.
func (c *Client) Sync() error {
	var o kif.OStream
	o.U64(fsSync)
	if _, err := c.call(&o); err != nil {
		return fmt.Errorf("m3fs: sync: %w", err)
	}
	return nil
}

// ReadDir lists a directory.
func (c *Client) ReadDir(path string) ([]m3.DirEntry, error) {
	var out []m3.DirEntry
	for idx := 0; ; {
		var o kif.OStream
		o.U64(fsReadDir).Str(path).U64(uint64(idx))
		is, err := c.call(&o)
		if err != nil {
			return nil, fmt.Errorf("m3fs: readdir %s: %w", path, err)
		}
		total, n := int(is.U64()), int(is.U64())
		for i := 0; i < n; i++ {
			name := is.Str()
			isDir := is.U64() != 0
			out = append(out, m3.DirEntry{Name: name, IsDir: isDir})
		}
		idx += n
		if idx >= total || n == 0 {
			return out, nil
		}
	}
}

func decodeStat(is *kif.IStream) m3.Stat {
	size := int64(is.U64())
	isDir := is.U64() != 0
	ino := is.U64()
	extents := int(is.U64())
	links := int(is.U64())
	return m3.Stat{Size: size, IsDir: isDir, Ino: ino, Extents: extents, Links: links}
}

func wireFlags(f m3.OpenFlags) uint64 {
	var w uint64
	if f&m3.OpenRead != 0 {
		w |= flagRead
	}
	if f&m3.OpenWrite != 0 {
		w |= flagWrite
	}
	if f&m3.OpenCreate != 0 {
		w |= flagCreate
	}
	if f&m3.OpenTrunc != 0 {
		w |= flagTrunc
	}
	if f&m3.OpenAppend != 0 {
		w |= flagAppend
	}
	return w
}

// cext is a cached extent: a memory gate covering file bytes
// [off, off+len).
type cext struct {
	off, len int64
	mg       *m3.MemGate
}

// file implements m3.File. The extent cache makes repeated reads,
// writes, and most seeks purely local (§4.5.8): only when the position
// leaves the obtained extents is m3fs contacted again.
type file struct {
	c     *Client
	fd    uint64
	flags m3.OpenFlags
	pos   int64
	size  int64
	// alloc is the allocated (possibly preallocated) end of the file as
	// known locally; writes below it stay local.
	alloc   int64
	extents []cext
	closed  bool
}

// findExtent returns the cached extent containing off.
func (f *file) findExtent(off int64) *cext {
	for i := range f.extents {
		e := &f.extents[i]
		if off >= e.off && off < e.off+e.len {
			return e
		}
	}
	return nil
}

// locate obtains the extent covering off from m3fs.
func (f *file) locate(off int64) (*cext, error) {
	sel := f.c.env.AllocSel()
	var args kif.OStream
	args.U64(xLocate).U64(f.fd).U64(uint64(off))
	ret, err := f.c.env.ExchangeSess(f.c.sess, true, sel, 1, args.Bytes())
	if err != nil {
		return nil, err
	}
	ris := kif.NewIStream(ret)
	extOff, extLen := int64(ris.U64()), int64(ris.U64())
	e := cext{off: extOff, len: extLen, mg: f.c.env.MemGateAt(sel, int(extLen))}
	f.extents = append(f.extents, e)
	if extOff+extLen > f.alloc {
		f.alloc = extOff + extLen
	}
	return &f.extents[len(f.extents)-1], nil
}

// appendExtent asks m3fs to reserve new blocks at the end of the file.
func (f *file) appendExtent() (*cext, error) {
	sel := f.c.env.AllocSel()
	var args kif.OStream
	args.U64(xAppend).U64(f.fd).U64(uint64(f.c.AppendBlocks))
	if f.c.NoMerge {
		args.U64(1)
	} else {
		args.U64(0)
	}
	ret, err := f.c.env.ExchangeSess(f.c.sess, true, sel, 1, args.Bytes())
	if err != nil {
		return nil, err
	}
	ris := kif.NewIStream(ret)
	extOff, extLen := int64(ris.U64()), int64(ris.U64())
	e := cext{off: extOff, len: extLen, mg: f.c.env.MemGateAt(sel, int(extLen))}
	f.extents = append(f.extents, e)
	if extOff+extLen > f.alloc {
		f.alloc = extOff + extLen
	}
	return &f.extents[len(f.extents)-1], nil
}

// Read fills buf from the current position, returning io.EOF at end of
// file.
func (f *file) Read(buf []byte) (int, error) {
	env := f.c.env
	env.Ctx.Compute(m3.CostFileEnter)
	if f.closed {
		return 0, errors.New("m3fs: read on closed file")
	}
	if f.pos >= f.size {
		return 0, io.EOF
	}
	env.Ctx.Compute(m3.CostFileLocate)
	e := f.findExtent(f.pos)
	if e == nil {
		var err error
		if e, err = f.locate(f.pos); err != nil {
			return 0, err
		}
	}
	n := int64(len(buf))
	if rest := e.off + e.len - f.pos; n > rest {
		n = rest
	}
	if rest := f.size - f.pos; n > rest {
		n = rest
	}
	if err := e.mg.Read(buf[:n], int(f.pos-e.off)); err != nil {
		return 0, err
	}
	f.pos += n
	return int(n), nil
}

// Write stores buf at the current position, appending via preallocated
// extents as needed.
func (f *file) Write(buf []byte) (int, error) {
	env := f.c.env
	env.Ctx.Compute(m3.CostFileEnter)
	if f.closed {
		return 0, errors.New("m3fs: write on closed file")
	}
	if f.flags&m3.OpenWrite == 0 {
		return 0, errors.New("m3fs: file not open for writing")
	}
	total := 0
	for len(buf) > 0 {
		env.Ctx.Compute(m3.CostFileLocate)
		e := f.findExtent(f.pos)
		if e == nil {
			var err error
			if f.pos < f.size || f.pos < f.alloc {
				// Overwriting existing data (or preallocated space):
				// obtain the extent that already covers the position.
				e, err = f.locate(f.pos)
				if err != nil && errors.Is(err, kif.ErrEndOfFile) {
					e, err = f.appendExtent()
				}
			} else {
				e, err = f.appendExtent()
			}
			if err != nil {
				return total, err
			}
		}
		n := int64(len(buf))
		if rest := e.off + e.len - f.pos; n > rest {
			n = rest
		}
		if err := e.mg.Write(buf[:n], int(f.pos-e.off)); err != nil {
			return total, err
		}
		f.pos += n
		if f.pos > f.size {
			f.size = f.pos
		}
		buf = buf[n:]
		total += int(n)
	}
	return total, nil
}

// Seek adjusts the position; it is purely local ("most seek operations
// can be done in libm3").
func (f *file) Seek(off int64, whence int) (int64, error) {
	f.c.env.Ctx.Compute(m3.CostFileLocate)
	switch whence {
	case io.SeekStart:
		f.pos = off
	case io.SeekCurrent:
		f.pos += off
	case io.SeekEnd:
		f.pos = f.size + off
	default:
		return 0, errors.New("m3fs: bad whence")
	}
	if f.pos < 0 {
		f.pos = 0
	}
	return f.pos, nil
}

// Close reports the final size so m3fs can truncate preallocation.
func (f *file) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	var o kif.OStream
	o.U64(fsClose).U64(f.fd).U64(uint64(f.size))
	_, err := f.c.call(&o)
	return err
}

// Stat queries the service about the open file.
func (f *file) Stat() (m3.Stat, error) {
	var o kif.OStream
	o.U64(fsFStat).U64(f.fd)
	is, err := f.c.call(&o)
	if err != nil {
		return m3.Stat{}, err
	}
	return decodeStat(is), nil
}
