package m3fs

import (
	"fmt"
	"testing"
	"testing/quick"
)

func newFS() *FsCore { return NewFsCore(1<<20, 1024) } // 1024 blocks

func TestCreateLookup(t *testing.T) {
	fs := newFS()
	if _, err := fs.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Create("/a/f"); err != nil {
		t.Fatal(err)
	}
	ino, depth, err := fs.Lookup("/a/f")
	if err != nil || ino.Dir || depth != 2 {
		t.Fatalf("lookup = %v depth=%d err=%v", ino, depth, err)
	}
	if _, _, err := fs.Lookup("/a/g"); err == nil {
		t.Fatal("missing file must not resolve")
	}
	if _, _, err := fs.Create("/a/f"); err == nil {
		t.Fatal("duplicate create must fail")
	}
	if _, _, err := fs.Create("/nodir/f"); err == nil {
		t.Fatal("create under missing dir must fail")
	}
}

func TestAppendMergeAndNoMerge(t *testing.T) {
	fs := newFS()
	ino, _, _ := fs.Create("/f")
	if _, err := fs.Append(ino, 10, false); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Append(ino, 10, false); err != nil {
		t.Fatal(err)
	}
	if len(ino.Extents) != 1 || ino.Extents[0].Blocks != 20 {
		t.Fatalf("merged extents = %v", ino.Extents)
	}
	if _, err := fs.Append(ino, 10, true); err != nil {
		t.Fatal(err)
	}
	if len(ino.Extents) != 2 {
		t.Fatalf("noMerge extents = %v", ino.Extents)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateFreesBlocks(t *testing.T) {
	fs := newFS()
	ino, _, _ := fs.Create("/f")
	if _, err := fs.Append(ino, 256, false); err != nil {
		t.Fatal(err)
	}
	used := fs.UsedBlocks()
	if used != 256 {
		t.Fatalf("used = %d", used)
	}
	fs.Truncate(ino, 10*1024) // keep 10 blocks
	if fs.UsedBlocks() != 10 {
		t.Fatalf("after truncate used = %d, want 10", fs.UsedBlocks())
	}
	if ino.Size != 10*1024 {
		t.Fatalf("size = %d", ino.Size)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateToZeroRemovesExtents(t *testing.T) {
	fs := newFS()
	ino, _, _ := fs.Create("/f")
	_, _ = fs.Append(ino, 16, true)
	_, _ = fs.Append(ino, 16, true)
	fs.Truncate(ino, 0)
	if len(ino.Extents) != 0 || ino.AllocBlocks != 0 {
		t.Fatalf("extents = %v alloc = %d", ino.Extents, ino.AllocBlocks)
	}
	if fs.UsedBlocks() != 0 {
		t.Fatalf("used = %d", fs.UsedBlocks())
	}
}

func TestUnlinkFreesBlocks(t *testing.T) {
	fs := newFS()
	ino, _, _ := fs.Create("/f")
	_, _ = fs.Append(ino, 100, false)
	fs.Truncate(ino, 100*1024)
	if _, err := fs.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if fs.UsedBlocks() != 0 {
		t.Fatalf("used = %d after unlink", fs.UsedBlocks())
	}
	if _, _, err := fs.Lookup("/f"); err == nil {
		t.Fatal("unlinked file still resolves")
	}
}

func TestUnlinkNonEmptyDirFails(t *testing.T) {
	fs := newFS()
	_, _ = fs.Mkdir("/d")
	_, _, _ = fs.Create("/d/f")
	if _, err := fs.Unlink("/d"); err == nil {
		t.Fatal("unlink of non-empty dir must fail")
	}
	if _, err := fs.Unlink("/d/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Unlink("/d"); err != nil {
		t.Fatal(err)
	}
}

func TestFindExtent(t *testing.T) {
	fs := newFS()
	ino, _, _ := fs.Create("/f")
	_, _ = fs.Append(ino, 4, true) // [0, 4K)
	_, _ = fs.Append(ino, 8, true) // [4K, 12K)
	ext, off, l, ok := fs.FindExtent(ino, 0)
	if !ok || off != 0 || l != 4096 || ext.Blocks != 4 {
		t.Fatalf("first = %v %d %d %v", ext, off, l, ok)
	}
	_, off, l, ok = fs.FindExtent(ino, 5000)
	if !ok || off != 4096 || l != 8192 {
		t.Fatalf("second = %d %d %v", off, l, ok)
	}
	if _, _, _, ok := fs.FindExtent(ino, 12288); ok {
		t.Fatal("offset beyond allocation must miss")
	}
}

func TestAllocExhaustion(t *testing.T) {
	fs := NewFsCore(16*1024, 1024) // 16 blocks
	ino, _, _ := fs.Create("/f")
	if _, err := fs.Append(ino, 16, false); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Append(ino, 1, false); err == nil {
		t.Fatal("allocation past capacity must fail")
	}
}

// TestFsckProperty performs random filesystem operations and checks
// the block-accounting invariants after each batch.
func TestFsckProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		fs := NewFsCore(1<<20, 1024)
		var files []*Inode
		var paths []string
		for i, op := range ops {
			switch op % 5 {
			case 0:
				p := fmt.Sprintf("/f%d", i)
				if ino, _, err := fs.Create(p); err == nil {
					files = append(files, ino)
					paths = append(paths, p)
				}
			case 1, 2:
				if len(files) > 0 {
					ino := files[int(op)%len(files)]
					_, _ = fs.Append(ino, int(op%64)+1, op%2 == 0)
				}
			case 3:
				if len(files) > 0 {
					ino := files[int(op)%len(files)]
					fs.Truncate(ino, int64(op)*17)
				}
			case 4:
				if len(paths) > 0 {
					i := int(op) % len(paths)
					if _, err := fs.Unlink(paths[i]); err == nil {
						files = append(files[:i], files[i+1:]...)
						paths = append(paths[:i], paths[i+1:]...)
					}
				}
			}
		}
		return fs.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
