package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSPMReadWrite(t *testing.T) {
	s := NewSPM(1024)
	if s.Size() != 1024 {
		t.Fatalf("size = %d", s.Size())
	}
	in := []byte("hello scratchpad")
	if err := s.Write(100, in); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(in))
	if err := s.Read(100, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatalf("got %q, want %q", out, in)
	}
}

func TestSPMBounds(t *testing.T) {
	s := NewSPM(64)
	cases := []struct {
		addr, n int
	}{
		{-1, 4}, {60, 8}, {64, 1}, {0, 65},
	}
	for _, c := range cases {
		if err := s.Write(c.addr, make([]byte, c.n)); err == nil {
			t.Fatalf("write at %d len %d should fail", c.addr, c.n)
		}
		if err := s.Read(c.addr, make([]byte, c.n)); err == nil {
			t.Fatalf("read at %d len %d should fail", c.addr, c.n)
		}
	}
}

func TestSPMRoundTripProperty(t *testing.T) {
	s := NewSPM(4096)
	f := func(addr uint16, data []byte) bool {
		a := int(addr) % 2048
		if len(data) > 2048 {
			data = data[:2048]
		}
		if err := s.Write(a, data); err != nil {
			return false
		}
		out := make([]byte, len(data))
		if err := s.Read(a, out); err != nil {
			return false
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDRAMAccessTiming(t *testing.T) {
	e := sim.NewEngine()
	d := NewDRAM(e, DRAMConfig{Size: 1 << 20, Latency: 20})
	var done sim.Time
	e.Spawn("rw", func(p *sim.Process) {
		buf := []byte("payload")
		if err := d.Access(p, true, 0, buf, nil); err != nil {
			t.Error(err)
		}
		done = p.Now()
	})
	e.Run()
	if done != 20 {
		t.Fatalf("write took %d cycles, want 20 (latency only, untimed stream)", done)
	}
	got := make([]byte, 7)
	if err := d.Peek(0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("dram contents = %q", got)
	}
}

func TestDRAMPortContention(t *testing.T) {
	e := sim.NewEngine()
	d := NewDRAM(e, DRAMConfig{Size: 1024, Ports: 1, Latency: 10})
	var t1, t2 sim.Time
	e.Spawn("a", func(p *sim.Process) {
		if err := d.Access(p, false, 0, make([]byte, 8), func() { p.Sleep(90) }); err != nil {
			t.Error(err)
		}
		t1 = p.Now()
	})
	e.Spawn("b", func(p *sim.Process) {
		if err := d.Access(p, false, 0, make([]byte, 8), nil); err != nil {
			t.Error(err)
		}
		t2 = p.Now()
	})
	e.Run()
	if t1 != 100 {
		t.Fatalf("first access finished at %d, want 100", t1)
	}
	if t2 != 110 {
		t.Fatalf("second access finished at %d, want 110 (queued behind first)", t2)
	}
}

func TestDRAMTwoPortsOverlap(t *testing.T) {
	e := sim.NewEngine()
	d := NewDRAM(e, DRAMConfig{Size: 1024, Ports: 2, Latency: 10})
	var finished []sim.Time
	for i := 0; i < 2; i++ {
		e.Spawn("x", func(p *sim.Process) {
			if err := d.Access(p, false, 0, make([]byte, 8), nil); err != nil {
				t.Error(err)
			}
			finished = append(finished, p.Now())
		})
	}
	e.Run()
	if len(finished) != 2 || finished[0] != 10 || finished[1] != 10 {
		t.Fatalf("finish times = %v, want both 10", finished)
	}
}

func TestDRAMBounds(t *testing.T) {
	e := sim.NewEngine()
	d := NewDRAM(e, DRAMConfig{Size: 128})
	e.Spawn("oob", func(p *sim.Process) {
		if err := d.Access(p, false, 120, make([]byte, 16), nil); err == nil {
			t.Error("out-of-bounds access should fail")
		}
	})
	e.Run()
	if err := d.Poke(-1, []byte{1}); err == nil {
		t.Fatal("negative poke should fail")
	}
	if err := d.Peek(128, []byte{1}); err == nil {
		t.Fatal("peek past end should fail")
	}
}

func TestDRAMPokePeek(t *testing.T) {
	e := sim.NewEngine()
	d := NewDRAM(e, DRAMConfig{Size: 256})
	if err := d.Poke(10, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 3)
	if err := d.Peek(10, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("peek = %v", out)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
