// Package mem models the memories of the prototype platform: the
// per-PE scratchpad memory (SPM) and the shared DRAM module.
//
// Contents are held as real bytes so that software-level protocols
// (message payloads, file data, pipe ringbuffers) move actual data and
// can be checked end-to-end, not just timed.
package mem

import (
	"fmt"

	"repro/internal/sim"
)

// SPM is a scratchpad memory: the only directly addressable memory of a
// PE in the prototype platform (the paper's Tomahawk PEs have 64 KiB
// for code and 64 KiB for data; we model the data SPM).
//
// Local loads/stores are accounted as core compute cycles by the tile
// layer; the SPM itself is untimed storage with bounds checking.
type SPM struct {
	data []byte
}

// NewSPM returns a zeroed scratchpad of the given size in bytes.
func NewSPM(size int) *SPM {
	if size <= 0 {
		panic("mem: SPM size must be positive")
	}
	return &SPM{data: make([]byte, size)}
}

// Size returns the scratchpad capacity in bytes.
func (s *SPM) Size() int { return len(s.data) }

// Read copies len(buf) bytes starting at addr into buf.
func (s *SPM) Read(addr int, buf []byte) error {
	if err := s.check(addr, len(buf)); err != nil {
		return err
	}
	copy(buf, s.data[addr:])
	return nil
}

// Write copies buf into the scratchpad starting at addr.
func (s *SPM) Write(addr int, buf []byte) error {
	if err := s.check(addr, len(buf)); err != nil {
		return err
	}
	copy(s.data[addr:], buf)
	return nil
}

func (s *SPM) check(addr, n int) error {
	if addr < 0 || n < 0 || addr+n > len(s.data) {
		return fmt.Errorf("mem: SPM access [%d,%d) out of range [0,%d)", addr, addr+n, len(s.data))
	}
	return nil
}

// DRAM models the platform's single external memory module. Accesses
// contend for a fixed number of ports; each access pays a fixed row
// latency, while streaming bandwidth is modelled by the NoC link into
// the memory tile (8 B/cycle end to end, as the paper's DTU achieves).
type DRAM struct {
	data    []byte
	ports   *sim.Resource
	latency sim.Time

	// faultDelay, when installed, returns extra access latency at a
	// given simulated time (fault injection: brownout windows).
	faultDelay func(now sim.Time) sim.Time
	// BrownoutCycles accumulates the injected extra latency.
	//m3vet:resolve sharedstate owner accumulated in DRAM access paths, which run in process context
	BrownoutCycles sim.Time
}

// DRAMConfig parameterizes a DRAM module.
type DRAMConfig struct {
	// Size in bytes.
	Size int
	// Ports is the number of concurrent accesses (default 1).
	Ports int
	// Latency is the fixed access latency in cycles (default 16).
	Latency sim.Time
}

// NewDRAM returns a zeroed DRAM module.
func NewDRAM(eng *sim.Engine, cfg DRAMConfig) *DRAM {
	if cfg.Size <= 0 {
		panic("mem: DRAM size must be positive")
	}
	if cfg.Ports <= 0 {
		cfg.Ports = 1
	}
	if cfg.Latency == 0 {
		cfg.Latency = 16
	}
	return &DRAM{
		data:    make([]byte, cfg.Size),
		ports:   sim.NewResource(eng, cfg.Ports),
		latency: cfg.Latency,
	}
}

// Size returns the module capacity in bytes.
func (d *DRAM) Size() int { return len(d.data) }

// Latency returns the fixed access latency in cycles.
func (d *DRAM) Latency() sim.Time { return d.latency }

// Ports exposes the port resource for utilisation statistics.
func (d *DRAM) Ports() *sim.Resource { return d.ports }

// Access performs a timed read or write of len(buf) bytes at addr: it
// acquires a port, pays the access latency, runs stream (which models
// the data streaming out of / into the module, typically a NoC send
// performed while the port is held), and releases the port. stream may
// be nil for untimed accesses.
func (d *DRAM) Access(p *sim.Process, write bool, addr int, buf []byte, stream func()) error {
	if err := d.check(addr, len(buf)); err != nil {
		return err
	}
	d.ports.Acquire(p, 1)
	p.Sleep(d.latency)
	if d.faultDelay != nil {
		if extra := d.faultDelay(p.Now()); extra > 0 {
			// A brownout slows the module down while the port is held,
			// so the slowdown also propagates as queueing delay.
			d.BrownoutCycles += extra
			p.Sleep(extra)
		}
	}
	if write {
		copy(d.data[addr:], buf)
	} else {
		copy(buf, d.data[addr:])
	}
	if stream != nil {
		stream()
	}
	d.ports.Release(1)
	return nil
}

// SetFaultDelay installs (or, with nil, removes) the brownout hook
// consulted on every access. Only internal/fault may call this
// (m3vet: faultsite).
func (d *DRAM) SetFaultDelay(fn func(now sim.Time) sim.Time) { d.faultDelay = fn }

// Peek copies bytes out of the module without simulated timing. It is
// meant for test assertions and for loading initial contents.
func (d *DRAM) Peek(addr int, buf []byte) error {
	if err := d.check(addr, len(buf)); err != nil {
		return err
	}
	copy(buf, d.data[addr:])
	return nil
}

// Poke copies bytes into the module without simulated timing.
func (d *DRAM) Poke(addr int, buf []byte) error {
	if err := d.check(addr, len(buf)); err != nil {
		return err
	}
	copy(d.data[addr:], buf)
	return nil
}

func (d *DRAM) check(addr, n int) error {
	if addr < 0 || n < 0 || addr+n > len(d.data) {
		return fmt.Errorf("mem: DRAM access [%d,%d) out of range [0,%d)", addr, addr+n, len(d.data))
	}
	return nil
}
