// Package overload holds the pure, deterministic state machines of the
// overload-control subsystem (docs/OVERLOAD.md): the shed controller
// that rejects lowest-priority work first once queue depth crosses its
// watermarks, the circuit breaker that fails fast after consecutive
// deadline misses, and the bounded retry budget clients apply to
// overload refusals.
//
// Nothing in this package schedules events or draws randomness: every
// decision is a pure function of (configuration, queue depth, sim
// clock), so overload control composes with the determinism contract —
// identical runs make identical shed/trip decisions. Time-based
// breaker transitions happen lazily on the next query instead of via
// timers, so an idle breaker costs zero scheduled events.
package overload

import "repro/internal/sim"

// Priority classes the shed controller discriminates on. Under
// pressure the lowest class is rejected first; PriorityHigh is shed
// only when the high watermark is crossed too... never: control-plane
// work (session teardown) must always get through.
type Priority uint8

// Priorities, lowest first.
const (
	// PriorityLow marks work that is cheapest to lose: new session
	// establishment, optional maintenance.
	PriorityLow Priority = iota
	// PriorityNormal marks regular data-path requests.
	PriorityNormal
	// PriorityHigh marks control-plane work that must not be shed
	// (e.g. session close — shedding it would leak server state).
	PriorityHigh

	numPriorities
)

func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	}
	return "unknown"
}

// ShedConfig parameterizes a Shedder. The zero value sheds nothing.
type ShedConfig struct {
	// LowWatermark is the queue depth at which PriorityLow work is
	// rejected (0 disables shedding entirely).
	LowWatermark int
	// HighWatermark is the queue depth at which PriorityNormal work is
	// rejected too; PriorityHigh is never shed. Zero means normal work
	// is never shed.
	HighWatermark int
}

// Enabled reports whether the configuration sheds anything at all.
func (c ShedConfig) Enabled() bool { return c.LowWatermark > 0 || c.HighWatermark > 0 }

// Shedder is the per-service shed controller: fed the service's
// current queue depth (the registry-sampled dtu_rx_queued series
// samples the same quantity), it decides admission per priority
// class.
type Shedder struct {
	cfg ShedConfig

	// Sheds counts rejections per priority class (observability; the
	// caller owns any metric export).
	Sheds [numPriorities]uint64
}

// NewShedder builds a shed controller. A HighWatermark below
// LowWatermark (but nonzero) is lifted to LowWatermark: the classes
// must shed in priority order.
func NewShedder(cfg ShedConfig) *Shedder {
	if cfg.HighWatermark > 0 && cfg.HighWatermark < cfg.LowWatermark {
		cfg.HighWatermark = cfg.LowWatermark
	}
	return &Shedder{cfg: cfg}
}

// Admit decides whether work of class pr is admitted at the given
// queue depth, counting rejections.
func (s *Shedder) Admit(depth int, pr Priority) bool {
	c := s.cfg
	shed := false
	switch pr {
	case PriorityLow:
		shed = c.LowWatermark > 0 && depth >= c.LowWatermark
	case PriorityNormal:
		shed = c.HighWatermark > 0 && depth >= c.HighWatermark
	}
	if shed {
		if pr < numPriorities {
			s.Sheds[pr]++
		}
		return false
	}
	return true
}

// ShedCount sums rejections across all priority classes.
func (s *Shedder) ShedCount() uint64 {
	var n uint64
	for _, v := range s.Sheds {
		n += v
	}
	return n
}

// State is a circuit-breaker state.
type State uint8

// Breaker states.
const (
	// StateClosed admits everything; consecutive failures are counted.
	StateClosed State = iota
	// StateOpen fails everything fast until the open window elapses.
	StateOpen
	// StateHalfOpen admits probes; enough successes close the breaker,
	// any failure re-opens it.
	StateHalfOpen
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker defaults, used where BreakerConfig leaves fields zero.
const (
	DefaultFailThreshold           = 3
	DefaultOpenFor        sim.Time = 1 << 16
	DefaultHalfOpenProbes          = 1
)

// BreakerConfig parameterizes a circuit breaker.
type BreakerConfig struct {
	// FailThreshold is the number of consecutive deadline misses that
	// trips the breaker (default DefaultFailThreshold).
	FailThreshold int
	// OpenFor is how many cycles a tripped breaker stays open before
	// probing again (default DefaultOpenFor).
	OpenFor sim.Time
	// HalfOpenProbes is the number of consecutive successes in
	// half-open that close the breaker again (default
	// DefaultHalfOpenProbes).
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = DefaultFailThreshold
	}
	if c.OpenFor <= 0 {
		c.OpenFor = DefaultOpenFor
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = DefaultHalfOpenProbes
	}
	return c
}

// Breaker is a deterministic circuit breaker keyed to the simulated
// clock. The open→half-open transition happens lazily when the state
// is next queried, so a breaker schedules no events of its own.
type Breaker struct {
	cfg BreakerConfig

	state State
	fails int
	successes int
	openedAt sim.Time
	opens uint64
}

// NewBreaker builds a breaker with defaults filled in.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State returns the breaker state as of now, applying the lazy
// open→half-open transition.
func (b *Breaker) State(now sim.Time) State {
	if b.state == StateOpen && now >= b.openedAt+b.cfg.OpenFor {
		b.state = StateHalfOpen
		b.successes = 0
	}
	return b.state
}

// Allow reports whether a call may proceed now: anything but open.
func (b *Breaker) Allow(now sim.Time) bool { return b.State(now) != StateOpen }

// OpenRemaining returns the cycles until an open breaker starts
// probing again, zero if it is not open. The supervisor uses it to
// hold restarts while the breaker is open (restart-storm suppression).
func (b *Breaker) OpenRemaining(now sim.Time) sim.Time {
	if b.State(now) != StateOpen {
		return 0
	}
	return b.openedAt + b.cfg.OpenFor - now
}

// Success records a completed call.
func (b *Breaker) Success(now sim.Time) {
	switch b.State(now) {
	case StateClosed:
		b.fails = 0
	case StateHalfOpen:
		b.successes++
		if b.successes >= b.cfg.HalfOpenProbes {
			b.state = StateClosed
			b.fails = 0
		}
	}
	// A success while open belongs to a call admitted before the trip;
	// it carries no information about the service now and is ignored.
}

// Failure records a deadline miss.
func (b *Breaker) Failure(now sim.Time) {
	switch b.State(now) {
	case StateClosed:
		b.fails++
		if b.fails >= b.cfg.FailThreshold {
			b.trip(now)
		}
	case StateHalfOpen:
		b.trip(now)
	}
}

func (b *Breaker) trip(now sim.Time) {
	b.state = StateOpen
	b.openedAt = now
	b.opens++
	b.fails = 0
	b.successes = 0
}

// Opens counts how often the breaker tripped.
func (b *Breaker) Opens() uint64 { return b.opens }

// RetryBudget defaults.
const (
	DefaultRetryAttempts          = 3
	DefaultRetryBackoff  sim.Time = 256
)

// RetryBudget is a bounded, deterministic retry policy for overload
// refusals: a fixed number of attempts with capped exponential
// backoff — never an unbounded loop, so a persistently overloaded
// service turns into a clean error instead of amplified load.
type RetryBudget struct {
	attempts int
	delay sim.Time
	max   sim.Time
	used int
}

// NewRetryBudget builds a budget of n retries starting at backoff
// cycles, doubling per retry, capped at maxBackoff. Zero arguments
// pick the defaults; maxBackoff zero caps at 8× the initial backoff.
func NewRetryBudget(n int, backoff, maxBackoff sim.Time) RetryBudget {
	if n <= 0 {
		n = DefaultRetryAttempts
	}
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	if maxBackoff <= 0 {
		maxBackoff = backoff * 8
	}
	return RetryBudget{attempts: n, delay: backoff, max: maxBackoff}
}

// Next consumes one retry: it returns the backoff to sleep before the
// attempt, or ok=false when the budget is exhausted.
func (r *RetryBudget) Next() (delay sim.Time, ok bool) {
	if r.used >= r.attempts {
		return 0, false
	}
	r.used++
	delay = r.delay
	if r.delay >= r.max/2 {
		r.delay = r.max
	} else {
		r.delay *= 2
	}
	return delay, true
}

// Used reports the retries consumed so far.
func (r *RetryBudget) Used() int { return r.used }
