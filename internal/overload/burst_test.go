package overload

import (
	"testing"

	"repro/internal/sim"
)

func drain(g *Gen) []sim.Time {
	var out []sim.Time
	for {
		at, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, at)
	}
}

func TestGenConstant(t *testing.T) {
	g := NewGen(BurstConfig{Start: 10, Interval: 5, Count: 4}, 0)
	got := drain(g)
	want := []sim.Time{10, 15, 20, 25}
	if len(got) != len(want) {
		t.Fatalf("arrivals = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", got, want)
		}
	}
	if g.Emitted() != 4 {
		t.Fatalf("Emitted() = %d, want 4", g.Emitted())
	}
}

func TestGenStep(t *testing.T) {
	g := NewGen(BurstConfig{Shape: ShapeStep, Start: 0, Interval: 10, Count: 6, StepAt: 25, StepInterval: 2}, 0)
	got := drain(g)
	// 0, 10, 20 at the base rate; arrivals from t>=25 use the step gap.
	want := []sim.Time{0, 10, 20, 30, 32, 34}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", got, want)
		}
	}
}

func TestGenSpike(t *testing.T) {
	g := NewGen(BurstConfig{Shape: ShapeSpike, Start: 0, Interval: 10, Count: 7, SpikeAt: 15, SpikeLen: 3}, 0)
	got := drain(g)
	// Base arrivals 0, 10, 20; the first arrival at/after SpikeAt (20)
	// opens a 3-long zero-gap burst, then the base rate resumes.
	want := []sim.Time{0, 10, 20, 20, 20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("arrivals = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", got, want)
		}
	}
}

func TestGenJitterDeterministic(t *testing.T) {
	cfg := BurstConfig{Seed: 42, Start: 0, Interval: 100, Count: 50, Jitter: 0.3}
	a := drain(NewGen(cfg, 7))
	b := drain(NewGen(cfg, 7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (seed, stream) diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// A different stream must decorrelate.
	c := drain(NewGen(cfg, 8))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("streams 7 and 8 produced identical jittered schedules")
	}
	// Jitter must keep arrivals monotonic (gaps stay positive).
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("non-monotonic arrivals at %d: %v", i, a[:i+1])
		}
	}
}

func TestGenZeroCount(t *testing.T) {
	if got := drain(NewGen(BurstConfig{Interval: 10}, 0)); len(got) != 0 {
		t.Fatalf("zero-count generator emitted %v", got)
	}
}
