package overload

import "repro/internal/sim"

// Shape selects the arrival pattern of a burst generator.
type Shape uint8

// Arrival shapes.
const (
	// ShapeConstant emits arrivals at a fixed interval.
	ShapeConstant Shape = iota
	// ShapeStep switches from Interval to StepInterval at StepAt —
	// a sustained load change.
	ShapeStep
	// ShapeSpike injects SpikeLen back-to-back arrivals on top of the
	// constant base rate once the clock passes SpikeAt.
	ShapeSpike
)

func (s Shape) String() string {
	switch s {
	case ShapeConstant:
		return "constant"
	case ShapeStep:
		return "step"
	case ShapeSpike:
		return "spike"
	}
	return "unknown"
}

// BurstConfig parameterizes an open-loop arrival schedule.
type BurstConfig struct {
	// Seed derives the jitter stream (decorrelated per generator via
	// the stream argument of NewGen).
	Seed uint64
	// Shape selects the pattern.
	Shape Shape
	// Start is the absolute cycle of the first arrival.
	Start sim.Time
	// Interval is the base inter-arrival gap in cycles (must be > 0).
	Interval sim.Time
	// Count is the total number of arrivals the generator emits.
	Count int

	// StepAt/StepInterval: for ShapeStep, arrivals at or after StepAt
	// use StepInterval as the gap instead of Interval.
	StepAt       sim.Time
	StepInterval sim.Time

	// SpikeAt/SpikeLen: for ShapeSpike, the first arrival at or after
	// SpikeAt is followed by SpikeLen-1 arrivals with zero gap.
	SpikeAt  sim.Time
	SpikeLen int

	// Jitter spreads each gap by a deterministic ±Jitter fraction drawn
	// from the seeded stream (0 disables; values are clamped to [0,1]).
	Jitter float64
}

// Gen is a deterministic open-loop burst generator: Next returns
// absolute arrival times. Open-loop means the schedule does not react
// to completions — a slow service falls behind the schedule instead of
// silently throttling the offered load (coordinated omission).
type Gen struct {
	cfg BurstConfig
	rng *sim.Rand

	t sim.Time
	i int
	spiking int
	spiked bool
}

// NewGen builds a generator. stream decorrelates multiple generators
// sharing one seed (use the client index) without correlating their
// jitter draws.
func NewGen(cfg BurstConfig, stream uint64) *Gen {
	if cfg.Interval == 0 {
		cfg.Interval = 1
	}
	if cfg.Shape == ShapeStep && cfg.StepInterval == 0 {
		cfg.StepInterval = cfg.Interval
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.Jitter > 1 {
		cfg.Jitter = 1
	}
	return &Gen{
		cfg: cfg,
		rng: sim.NewRand(sim.Hash(cfg.Seed, 0xb5b5b5b5, stream)),
		t:   cfg.Start,
	}
}

// Next returns the next absolute arrival time, ok=false once Count
// arrivals have been emitted.
func (g *Gen) Next() (at sim.Time, ok bool) {
	if g.i >= g.cfg.Count {
		return 0, false
	}
	if g.i == 0 {
		g.i++
		return g.t, true
	}
	gap := g.gap()
	if g.cfg.Jitter > 0 {
		f := 1 + (g.rng.Float64()*2-1)*g.cfg.Jitter
		gap = sim.Time(float64(gap) * f)
	}
	g.t += gap
	g.i++
	return g.t, true
}

// gap picks the shape's base inter-arrival gap for the next emission.
func (g *Gen) gap() sim.Time {
	c := g.cfg
	switch c.Shape {
	case ShapeStep:
		if g.t >= c.StepAt {
			return c.StepInterval
		}
	case ShapeSpike:
		if g.spiking > 0 {
			g.spiking--
			return 0
		}
		if !g.spiked && g.t >= c.SpikeAt {
			g.spiked = true
			if c.SpikeLen > 1 {
				g.spiking = c.SpikeLen - 2 // this zero gap plus spiking more
				return 0
			}
		}
	}
	return c.Interval
}

// Emitted reports how many arrivals the generator has produced.
func (g *Gen) Emitted() int { return g.i }
