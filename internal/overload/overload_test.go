package overload

import (
	"testing"

	"repro/internal/sim"
)

func TestShedderPriorityOrdering(t *testing.T) {
	cases := []struct {
		name  string
		cfg   ShedConfig
		depth int
		want  [3]bool // admit per priority low/normal/high
	}{
		{"off-zero-config", ShedConfig{}, 1 << 20, [3]bool{true, true, true}},
		{"idle", ShedConfig{LowWatermark: 4, HighWatermark: 8}, 0, [3]bool{true, true, true}},
		{"below-low", ShedConfig{LowWatermark: 4, HighWatermark: 8}, 3, [3]bool{true, true, true}},
		{"at-low", ShedConfig{LowWatermark: 4, HighWatermark: 8}, 4, [3]bool{false, true, true}},
		{"between", ShedConfig{LowWatermark: 4, HighWatermark: 8}, 7, [3]bool{false, true, true}},
		{"at-high", ShedConfig{LowWatermark: 4, HighWatermark: 8}, 8, [3]bool{false, false, true}},
		{"way-past-high", ShedConfig{LowWatermark: 4, HighWatermark: 8}, 1 << 20, [3]bool{false, false, true}},
		{"low-only", ShedConfig{LowWatermark: 4}, 100, [3]bool{false, true, true}},
		{"inverted-watermarks-lifted", ShedConfig{LowWatermark: 8, HighWatermark: 2}, 7, [3]bool{true, true, true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewShedder(tc.cfg)
			for pr, want := range map[Priority]bool{
				PriorityLow:    tc.want[0],
				PriorityNormal: tc.want[1],
				PriorityHigh:   tc.want[2],
			} {
				if got := s.Admit(tc.depth, pr); got != want {
					t.Errorf("Admit(depth=%d, %v) = %v, want %v", tc.depth, pr, got, want)
				}
			}
		})
	}
}

func TestShedderCounters(t *testing.T) {
	s := NewShedder(ShedConfig{LowWatermark: 1, HighWatermark: 2})
	for i := 0; i < 3; i++ {
		s.Admit(5, PriorityLow)
	}
	s.Admit(5, PriorityNormal)
	s.Admit(5, PriorityHigh) // never shed, never counted
	if s.Sheds[PriorityLow] != 3 || s.Sheds[PriorityNormal] != 1 || s.Sheds[PriorityHigh] != 0 {
		t.Fatalf("shed counters = %v", s.Sheds)
	}
	if s.ShedCount() != 4 {
		t.Fatalf("ShedCount() = %d, want 4", s.ShedCount())
	}
}

// TestBreakerTransitions walks the full closed→open→half-open→closed
// and half-open→open cycles as a scripted table.
func TestBreakerTransitions(t *testing.T) {
	cfg := BreakerConfig{FailThreshold: 3, OpenFor: 100, HalfOpenProbes: 2}

	type step struct {
		at      sim.Time
		op      string // "fail", "ok", "check"
		state   State
		allowed bool
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"trip-at-threshold", []step{
			{0, "fail", StateClosed, true},
			{1, "fail", StateClosed, true},
			{2, "fail", StateOpen, false},
		}},
		{"success-resets-fail-count", []step{
			{0, "fail", StateClosed, true},
			{1, "fail", StateClosed, true},
			{2, "ok", StateClosed, true},
			{3, "fail", StateClosed, true},
			{4, "fail", StateClosed, true},
			{5, "fail", StateOpen, false},
		}},
		{"open-window-elapses-to-half-open", []step{
			{0, "fail", StateClosed, true},
			{1, "fail", StateClosed, true},
			{2, "fail", StateOpen, false},
			{101, "check", StateOpen, false}, // tripped at 2; window ends at 102
			{102, "check", StateHalfOpen, true},
		}},
		{"half-open-closes-after-probes", []step{
			{0, "fail", StateClosed, true},
			{1, "fail", StateClosed, true},
			{2, "fail", StateOpen, false},
			{102, "ok", StateHalfOpen, true},
			{103, "ok", StateClosed, true},
		}},
		{"half-open-failure-reopens", []step{
			{0, "fail", StateClosed, true},
			{1, "fail", StateClosed, true},
			{2, "fail", StateOpen, false},
			{102, "ok", StateHalfOpen, true},
			{103, "fail", StateOpen, false},
			{202, "check", StateOpen, false}, // re-tripped at 103; reopens at 203
			{203, "check", StateHalfOpen, true},
		}},
		{"success-while-open-ignored", []step{
			{0, "fail", StateClosed, true},
			{1, "fail", StateClosed, true},
			{2, "fail", StateOpen, false},
			{50, "ok", StateOpen, false}, // stale completion of a pre-trip call
			{102, "check", StateHalfOpen, true},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBreaker(cfg)
			for i, st := range tc.steps {
				switch st.op {
				case "fail":
					b.Failure(st.at)
				case "ok":
					b.Success(st.at)
				case "check":
				default:
					t.Fatalf("step %d: bad op %q", i, st.op)
				}
				if got := b.State(st.at); got != st.state {
					t.Fatalf("step %d (t=%d %s): state = %v, want %v", i, st.at, st.op, got, st.state)
				}
				if got := b.Allow(st.at); got != st.allowed {
					t.Fatalf("step %d (t=%d %s): Allow = %v, want %v", i, st.at, st.op, got, st.allowed)
				}
			}
		})
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < DefaultFailThreshold; i++ {
		if !b.Allow(sim.Time(i)) {
			t.Fatalf("breaker opened after %d failures, threshold is %d", i, DefaultFailThreshold)
		}
		b.Failure(sim.Time(i))
	}
	now := sim.Time(DefaultFailThreshold - 1)
	if b.Allow(now) {
		t.Fatal("breaker still closed at default threshold")
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens() = %d, want 1", b.Opens())
	}
	if rem := b.OpenRemaining(now); rem != DefaultOpenFor {
		t.Fatalf("OpenRemaining = %d, want %d", rem, DefaultOpenFor)
	}
	if rem := b.OpenRemaining(now + DefaultOpenFor); rem != 0 {
		t.Fatalf("OpenRemaining after window = %d, want 0", rem)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	r := NewRetryBudget(3, 100, 300)
	var delays []sim.Time
	for {
		d, ok := r.Next()
		if !ok {
			break
		}
		delays = append(delays, d)
	}
	want := []sim.Time{100, 200, 300} // doubled, capped at 300
	if len(delays) != len(want) {
		t.Fatalf("got %d retries %v, want %v", len(delays), delays, want)
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("retry %d delay = %d, want %d (all: %v)", i, delays[i], want[i], delays)
		}
	}
	if r.Used() != 3 {
		t.Fatalf("Used() = %d, want 3", r.Used())
	}
	// Exhausted budgets stay exhausted.
	if _, ok := r.Next(); ok {
		t.Fatal("budget handed out a retry past exhaustion")
	}
}

func TestRetryBudgetDefaultsAndOverflow(t *testing.T) {
	r := NewRetryBudget(0, 0, 0)
	d, ok := r.Next()
	if !ok || d != DefaultRetryBackoff {
		t.Fatalf("first default retry = (%d, %v), want (%d, true)", d, ok, DefaultRetryBackoff)
	}
	// A budget whose delay is near the top of the sim.Time range must
	// clamp to max instead of wrapping around.
	top := sim.Time(1) << 63
	r2 := NewRetryBudget(4, top, top+1)
	var last sim.Time
	for {
		d, ok := r2.Next()
		if !ok {
			break
		}
		if d < last {
			t.Fatalf("backoff wrapped: %d after %d", d, last)
		}
		last = d
	}
	if last != top+1 {
		t.Fatalf("final backoff = %d, want clamp at %d", last, top+1)
	}
}

// TestBreakerDeterminism replays the same operation script twice and
// demands identical state trajectories — the breaker is a pure state
// machine over (ops, clock).
func TestBreakerDeterminism(t *testing.T) {
	script := func() []State {
		b := NewBreaker(BreakerConfig{FailThreshold: 2, OpenFor: 10, HalfOpenProbes: 1})
		var states []State
		ops := []struct {
			at   sim.Time
			fail bool
		}{
			{0, true}, {1, true}, {12, false}, {13, true}, {14, true}, {30, false}, {31, false},
		}
		for _, op := range ops {
			if op.fail {
				b.Failure(op.at)
			} else {
				b.Success(op.at)
			}
			states = append(states, b.State(op.at))
		}
		return states
	}
	a, bb := script(), script()
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("replay diverged at step %d: %v vs %v", i, a, bb)
		}
	}
}
